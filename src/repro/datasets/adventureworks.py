"""Synthetic AdventureWorks-like warehouses (AW_ONLINE and AW_RESELLER).

The paper's experiments run on the AdventureWorks data warehouse shipped
with SQL Server 2005, split into an Internet-sales database (AW_ONLINE:
5 dimensions / 10 tables, 3 hierarchical) and a reseller-sales database
(AW_RESELLER: 7 dimensions / 13 tables, 4 hierarchical), each with >60,000
fact rows and >20 full-text-searchable attribute domains.

That dataset is proprietary, so these builders synthesise warehouses with
the *same shape statistics* and a vocabulary seeded with the actual
AdventureWorks terms that appear in the paper's Tables 1-3 (so the
published keyword queries run verbatim).  Generation is fully
deterministic given the seed.

Two deliberate structural injections make the interestingness experiments
meaningful:

* *affinities* — product choice depends on the customer's income (price
  affinity), state (Californians over-buy mountain bikes), and season —
  which gives roll-up partitioning genuine surprises to find;
* *heavy tails* — customers, resellers, and products draw from Zipf-like
  weights, as real sales do.

Counts deviate slightly from the paper where AdventureWorks' exact table
split is unknowable: AW_ONLINE here is 6 dimensions / 10 tables (we count
Currency as its own mini-dimension), AW_RESELLER is 7 dimensions /
13 tables.  DESIGN.md records the substitution.
"""

from __future__ import annotations

import datetime as _dt

from ..relational.catalog import Database
from ..relational.expressions import Arith, Col
from ..relational.table import Table
from ..relational.types import date, float_, integer, text
from ..warehouse.graph import path_from_fk_names
from ..warehouse.schema import (
    AttributeKind,
    AttributeRef,
    Dimension,
    GroupByAttribute,
    Hierarchy,
    Measure,
    StarSchema,
)
from . import vocab
from .rng import lognormal_income, make_rng, zipf_weights

REVENUE = Measure("revenue", Arith("*", Col("UnitPrice"), Col("Quantity")),
                  "sum")
"""The paper's single measure: sales revenue = sum(UnitPrice * Quantity)."""

_SPECIAL_CUSTOMERS = [
    # (first, last, email, address, city, phone) — fixed rows the paper's
    # queries rely on
    ("Fernando", "Sanchez", "fernando35@adventure-works.com",
     "2576 Fernwood Court", "San Jose", "1445550182"),
    ("Sydney", "Rogers", "sydney4@adventure-works.com",
     "9228 Via Del Sol", "Sydney", "1335550126"),
    ("Jose", "Martinez", "jose41@adventure-works.com",
     "3114 Notre Dame Ave", "San Antonio", "1275550199"),
    ("Christy", "Zhu", "christy12@adventure-works.com",
     "345 California Street", "San Francisco", "1185550141"),
    ("Marco", "Mehta", "marco14@adventure-works.com",
     "392 California Street", "San Francisco", "1205550137"),
    ("Isabella", "Carter", "isabella7@adventure-works.com",
     "7800 Corrinne Court", "Palo Alto", "1665550154"),
    ("Lauren", "Walker", "lauren20@adventure-works.com",
     "4785 Scott Street", "Seattle", "1245550139"),
]


# ======================================================================
# shared dimension-table builders
# ======================================================================
def _build_geography(db: Database) -> Table:
    geo = db.add_table(Table("DimGeography", [
        integer("GeographyKey", nullable=False),
        text("City"),
        text("StateProvinceName"),
        text("CountryRegionName"),
        text("CountryRegionCode"),
        text("PostalCode"),
    ], primary_key="GeographyKey"))
    for key, (city, state, country, code, postal) in enumerate(
            vocab.GEOGRAPHIES, start=1):
        geo.insert({
            "GeographyKey": key, "City": city, "StateProvinceName": state,
            "CountryRegionName": country, "CountryRegionCode": code,
            "PostalCode": postal,
        })
    return geo


def _build_product_tables(db: Database) -> None:
    categories = sorted(set(vocab.SUBCATEGORY_TO_CATEGORY.values()))
    cat_table = db.add_table(Table("DimProductCategory", [
        integer("ProductCategoryKey", nullable=False),
        text("ProductCategoryName"),
    ], primary_key="ProductCategoryKey"))
    cat_keys = {}
    for key, name in enumerate(categories, start=1):
        cat_table.insert({"ProductCategoryKey": key,
                          "ProductCategoryName": name})
        cat_keys[name] = key

    sub_table = db.add_table(Table("DimProductSubcategory", [
        integer("ProductSubcategoryKey", nullable=False),
        text("ProductSubcategoryName"),
        integer("ProductCategoryKey"),
    ], primary_key="ProductSubcategoryKey"))
    sub_keys = {}
    for key, (sub, cat) in enumerate(
            sorted(vocab.SUBCATEGORY_TO_CATEGORY.items()), start=1):
        sub_table.insert({
            "ProductSubcategoryKey": key, "ProductSubcategoryName": sub,
            "ProductCategoryKey": cat_keys[cat],
        })
        sub_keys[sub] = key

    prod_table = db.add_table(Table("DimProduct", [
        integer("ProductKey", nullable=False),
        text("EnglishProductName"),
        text("ModelName"),
        text("Color"),
        float_("DealerPrice"),
        float_("ListPrice"),
        text("EnglishDescription"),
        integer("ProductSubcategoryKey"),
    ], primary_key="ProductKey"))
    for key, (name, sub, model, color, dealer, list_price, desc) in enumerate(
            vocab.PRODUCTS, start=1):
        prod_table.insert({
            "ProductKey": key, "EnglishProductName": name,
            "ModelName": model, "Color": color, "DealerPrice": dealer,
            "ListPrice": list_price, "EnglishDescription": desc,
            "ProductSubcategoryKey": sub_keys[sub],
        })

    db.add_foreign_key("fk_sub_category", "DimProductSubcategory",
                       "ProductCategoryKey", "DimProductCategory",
                       "ProductCategoryKey")
    db.add_foreign_key("fk_product_sub", "DimProduct",
                       "ProductSubcategoryKey", "DimProductSubcategory",
                       "ProductSubcategoryKey")


def _build_date(db: Database, start_year: int = 2000,
                end_year: int = 2004) -> Table:
    table = db.add_table(Table("DimDate", [
        integer("DateKey", nullable=False),
        date("FullDate"),
        text("MonthName"),
        text("CalendarQuarter"),
        integer("CalendarYear"),
        text("CalendarYearName"),
        text("DayNameOfWeek"),
    ], primary_key="DateKey"))
    day = _dt.date(start_year, 1, 1)
    end = _dt.date(end_year, 12, 31)
    while day <= end:
        table.insert({
            "DateKey": day.year * 10000 + day.month * 100 + day.day,
            "FullDate": day,
            "MonthName": vocab.MONTHS[day.month - 1],
            "CalendarQuarter": f"Q{(day.month - 1) // 3 + 1}",
            "CalendarYear": day.year,
            "CalendarYearName": str(day.year),
            "DayNameOfWeek": vocab.DAY_NAMES[day.weekday()],
        })
        day += _dt.timedelta(days=1)
    return table


def _build_promotions(db: Database) -> Table:
    table = db.add_table(Table("DimPromotion", [
        integer("PromotionKey", nullable=False),
        text("PromotionName"),
        text("PromotionType"),
        float_("DiscountPct"),
    ], primary_key="PromotionKey"))
    for key, (name, ptype, pct) in enumerate(vocab.PROMOTIONS, start=1):
        table.insert({"PromotionKey": key, "PromotionName": name,
                      "PromotionType": ptype, "DiscountPct": pct})
    return table


def _build_currency(db: Database) -> Table:
    table = db.add_table(Table("DimCurrency", [
        integer("CurrencyKey", nullable=False),
        text("CurrencyName"),
    ], primary_key="CurrencyKey"))
    for key, name in enumerate(vocab.CURRENCIES, start=1):
        table.insert({"CurrencyKey": key, "CurrencyName": name})
    return table


def _build_territory(db: Database) -> Table:
    table = db.add_table(Table("DimSalesTerritory", [
        integer("SalesTerritoryKey", nullable=False),
        text("SalesTerritoryRegion"),
        text("SalesTerritoryCountry"),
        text("SalesTerritoryGroup"),
    ], primary_key="SalesTerritoryKey"))
    for key, (region, country, group) in enumerate(vocab.TERRITORIES,
                                                   start=1):
        table.insert({
            "SalesTerritoryKey": key, "SalesTerritoryRegion": region,
            "SalesTerritoryCountry": country, "SalesTerritoryGroup": group,
        })
    return table


# ======================================================================
# helpers shared by both fact generators
# ======================================================================
def _geo_lookup() -> dict[str, tuple[int, str, str]]:
    """city → (geography key, state, country)."""
    return {
        city: (key, state, country)
        for key, (city, state, country, _code, _postal) in enumerate(
            vocab.GEOGRAPHIES, start=1)
    }


def _territory_key_for(state: str, country: str) -> int:
    regions = {region: key for key, (region, _c, _g) in
               enumerate(vocab.TERRITORIES, start=1)}
    if country == "United States":
        return regions[vocab.STATE_TO_TERRITORY.get(state, "Central")]
    return regions[vocab.COUNTRY_TO_TERRITORIES[country][0]]


def _currency_key_for(country: str) -> int:
    keys = {name: key for key, name in enumerate(vocab.CURRENCIES, start=1)}
    return keys[vocab.COUNTRY_TO_CURRENCY[country]]


def _product_month_weights() -> list[list[float]]:
    """Seasonal multiplier per (month, product): bikes peak in late
    spring/summer, clothing in winter, accessories in summer."""
    seasonal = {
        "Bikes": [0.6, 0.7, 0.9, 1.1, 1.4, 1.6, 1.6, 1.5, 1.2, 0.9, 0.7, 0.8],
        "Accessories": [0.8, 0.8, 1.0, 1.1, 1.3, 1.4, 1.5, 1.4, 1.1, 0.9,
                        0.8, 1.0],
        "Clothing": [1.4, 1.3, 1.0, 0.9, 0.8, 0.7, 0.7, 0.8, 1.0, 1.2, 1.4,
                     1.5],
        "Components": [1.0] * 12,
    }
    weights = []
    for month in range(12):
        row = []
        for _name, sub, *_rest in vocab.PRODUCTS:
            category = vocab.SUBCATEGORY_TO_CATEGORY[sub]
            row.append(seasonal[category][month])
        weights.append(row)
    return weights


def _price_affinity(income: float, dealer_price: float) -> float:
    """Richer customers are likelier to buy expensive products."""
    if dealer_price < 50.0:
        return 1.0
    wealth = income / 60000.0
    if dealer_price < 500.0:
        return 0.6 + 0.5 * wealth
    return 0.25 + 0.75 * wealth * wealth


def _promotion_for(rng, product_name: str, model: str) -> int:
    """Pick a promotion key, preferring product-specific promotions."""
    specific = {
        "Tire": "Mountain Tire Sale",
        "Road-650": "Road-650 Overstock",
        "Touring-3000": "Touring-3000 Promotion",
        "Pedal": "Half-Price Pedal Sale",
        "Helmet": "Sport Helmet Discount",
        "Mountain-100": "Mountain-100 Clearance Sale",
        "LL Road Frame": "LL Road Frame Sale",
    }
    promo_keys = {name: key for key, (name, _t, _p) in
                  enumerate(vocab.PROMOTIONS, start=1)}
    for needle, promo in specific.items():
        if needle in product_name or needle in model:
            if rng.random() < 0.30:
                return promo_keys[promo]
            break
    if rng.random() < 0.10:
        return promo_keys["Volume Discount 11 to 14"]
    return promo_keys["No Discount"]


# ======================================================================
# AW_ONLINE
# ======================================================================
def build_aw_online(num_customers: int = 600, num_facts: int = 60500,
                    seed: int = 42) -> StarSchema:
    """The Internet-sales warehouse (Figure 4/5/7 and Tables 1-3)."""
    rng = make_rng(seed)
    db = Database("AW_ONLINE")

    geo = _build_geography(db)
    _build_product_tables(db)
    _build_date(db)
    _build_promotions(db)
    _build_currency(db)
    _build_territory(db)

    # customers --------------------------------------------------------
    customers = db.add_table(Table("DimCustomer", [
        integer("CustomerKey", nullable=False),
        text("FirstName"),
        text("LastName"),
        text("EmailAddress"),
        text("AddressLine1"),
        text("Phone"),
        float_("YearlyIncome"),
        text("Education"),
        text("Occupation"),
        text("CommuteDistance"),
        integer("GeographyKey"),
    ], primary_key="CustomerKey"))
    geo_of_city = _geo_lookup()
    cities = list(geo_of_city)
    customer_rows: list[dict] = []
    for first, last, email, address, city, phone in _SPECIAL_CUSTOMERS:
        customer_rows.append({
            "FirstName": first, "LastName": last, "EmailAddress": email,
            "AddressLine1": address, "City": city, "Phone": phone,
        })
    while len(customer_rows) < num_customers:
        first = rng.choice(vocab.FIRST_NAMES)
        last = rng.choice(vocab.LAST_NAMES)
        number = rng.randrange(1, 100)
        street = rng.choice(vocab.STREETS)
        customer_rows.append({
            "FirstName": first, "LastName": last,
            "EmailAddress": f"{first.lower()}{number}@adventure-works.com",
            "AddressLine1": f"{rng.randrange(10, 9900)} {street}",
            "City": rng.choice(cities),
            "Phone": f"1{rng.randrange(100, 999)}555"
                     f"{rng.randrange(1000, 9999)}",
        })
    incomes: list[float] = []
    customer_geo: list[tuple[str, str]] = []  # (state, country)
    for key, row in enumerate(customer_rows, start=1):
        geo_key, state, country = geo_of_city[row["City"]]
        education = rng.choice(vocab.EDUCATIONS)
        income = lognormal_income(rng)
        if education in ("Bachelors", "Graduate Degree"):
            income = min(income * 1.3, 200000.0)
        customers.insert({
            "CustomerKey": key, "FirstName": row["FirstName"],
            "LastName": row["LastName"],
            "EmailAddress": row["EmailAddress"],
            "AddressLine1": row["AddressLine1"],
            "Phone": row["Phone"],
            "YearlyIncome": round(income / 10000.0) * 10000.0,
            "Education": education,
            "Occupation": rng.choice(vocab.OCCUPATIONS),
            "CommuteDistance": rng.choice(vocab.COMMUTE_DISTANCES),
            "GeographyKey": geo_key,
        })
        incomes.append(income)
        customer_geo.append((state, country))

    # fact table -------------------------------------------------------
    fact = db.add_table(Table("FactInternetSales", [
        integer("SalesOrderKey", nullable=False),
        integer("CustomerKey"),
        integer("ProductKey"),
        integer("DateKey"),
        integer("PromotionKey"),
        integer("CurrencyKey"),
        integer("SalesTerritoryKey"),
        float_("UnitPrice"),
        integer("Quantity"),
    ], primary_key="SalesOrderKey"))

    db.add_foreign_key("fk_fact_customer", "FactInternetSales",
                       "CustomerKey", "DimCustomer", "CustomerKey")
    db.add_foreign_key("fk_customer_geo", "DimCustomer", "GeographyKey",
                       "DimGeography", "GeographyKey")
    db.add_foreign_key("fk_fact_product", "FactInternetSales", "ProductKey",
                       "DimProduct", "ProductKey")
    db.add_foreign_key("fk_fact_date", "FactInternetSales", "DateKey",
                       "DimDate", "DateKey")
    db.add_foreign_key("fk_fact_promotion", "FactInternetSales",
                       "PromotionKey", "DimPromotion", "PromotionKey")
    db.add_foreign_key("fk_fact_currency", "FactInternetSales",
                       "CurrencyKey", "DimCurrency", "CurrencyKey")
    db.add_foreign_key("fk_fact_territory", "FactInternetSales",
                       "SalesTerritoryKey", "DimSalesTerritory",
                       "SalesTerritoryKey")

    _generate_online_facts(db, rng, num_facts, incomes, customer_geo)

    return _online_schema(db)


def _generate_online_facts(db: Database, rng, num_facts: int,
                           incomes: list[float],
                           customer_geo: list[tuple[str, str]]) -> None:
    fact = db.table("FactInternetSales")
    products = vocab.PRODUCTS
    num_customers = len(incomes)
    customer_weights = zipf_weights(num_customers, skew=0.4)
    date_keys = db.table("DimDate").column_values("DateKey")
    month_weights = _product_month_weights()

    # per-customer product base weights: zipf popularity x price affinity
    # x a California mountain-bike affinity (injected surprise)
    base_popularity = zipf_weights(len(products), skew=0.3)
    per_customer: list[list[float]] = []
    for idx in range(num_customers):
        state, _country = customer_geo[idx]
        income = incomes[idx]
        row = []
        for p_idx, (_name, sub, _model, _color, dealer, *_rest) in enumerate(
                products):
            weight = base_popularity[p_idx] * _price_affinity(income, dealer)
            if state == "California" and sub == "Mountain Bikes":
                weight *= 2.2
            if state == "New South Wales" and sub == "Helmets":
                weight *= 1.8
            row.append(weight)
        per_customer.append(row)

    product_indices = list(range(len(products)))
    customer_indices = list(range(num_customers))
    promo_pcts = {key: pct for key, (_n, _t, pct) in
                  enumerate(vocab.PROMOTIONS, start=1)}
    for order in range(1, num_facts + 1):
        c_idx = rng.choices(customer_indices, weights=customer_weights)[0]
        date_key = rng.choice(date_keys)
        month = (date_key // 100) % 100 - 1
        weights = [per_customer[c_idx][p] * month_weights[month][p]
                   for p in product_indices]
        p_idx = rng.choices(product_indices, weights=weights)[0]
        name, _sub, model, _color, _dealer, list_price, _desc = products[p_idx]
        promo_key = _promotion_for(rng, name, model)
        unit_price = round(list_price * (1.0 - promo_pcts[promo_key]), 2)
        state, country = customer_geo[c_idx]
        fact.insert({
            "SalesOrderKey": order,
            "CustomerKey": c_idx + 1,
            "ProductKey": p_idx + 1,
            "DateKey": date_key,
            "PromotionKey": promo_key,
            "CurrencyKey": _currency_key_for(country),
            "SalesTerritoryKey": _territory_key_for(state, country),
            "UnitPrice": unit_price,
            "Quantity": rng.choices([1, 2, 3, 4],
                                    weights=[8, 4, 2, 1])[0],
        })


def _online_schema(db: Database) -> StarSchema:
    fact = "FactInternetSales"

    def gb(table: str, column: str, kind: AttributeKind,
           fk_chain: list[str]) -> GroupByAttribute:
        return GroupByAttribute(
            AttributeRef(table, column), kind,
            path_from_fk_names(db, fact, fk_chain),
        )

    customer = Dimension(
        name="Customer",
        tables=("DimCustomer", "DimGeography"),
        hierarchies=(
            Hierarchy("CustomerGeography", (
                AttributeRef("DimGeography", "City"),
                AttributeRef("DimGeography", "StateProvinceName"),
                AttributeRef("DimGeography", "CountryRegionName"),
            )),
        ),
        groupbys=(
            gb("DimCustomer", "Education", AttributeKind.CATEGORICAL,
               ["fk_fact_customer"]),
            gb("DimCustomer", "Occupation", AttributeKind.CATEGORICAL,
               ["fk_fact_customer"]),
            gb("DimCustomer", "CommuteDistance", AttributeKind.CATEGORICAL,
               ["fk_fact_customer"]),
            gb("DimCustomer", "YearlyIncome", AttributeKind.NUMERICAL,
               ["fk_fact_customer"]),
            gb("DimGeography", "City", AttributeKind.CATEGORICAL,
               ["fk_fact_customer", "fk_customer_geo"]),
            gb("DimGeography", "StateProvinceName",
               AttributeKind.CATEGORICAL,
               ["fk_fact_customer", "fk_customer_geo"]),
            gb("DimGeography", "CountryRegionName",
               AttributeKind.CATEGORICAL,
               ["fk_fact_customer", "fk_customer_geo"]),
        ),
    )
    product = Dimension(
        name="Product",
        tables=("DimProduct", "DimProductSubcategory", "DimProductCategory"),
        hierarchies=(
            Hierarchy("ProductCategory", (
                AttributeRef("DimProduct", "EnglishProductName"),
                AttributeRef("DimProductSubcategory",
                             "ProductSubcategoryName"),
                AttributeRef("DimProductCategory", "ProductCategoryName"),
            )),
        ),
        groupbys=(
            gb("DimProductSubcategory", "ProductSubcategoryName",
               AttributeKind.CATEGORICAL,
               ["fk_fact_product", "fk_product_sub"]),
            gb("DimProductCategory", "ProductCategoryName",
               AttributeKind.CATEGORICAL,
               ["fk_fact_product", "fk_product_sub", "fk_sub_category"]),
            gb("DimProduct", "ModelName", AttributeKind.CATEGORICAL,
               ["fk_fact_product"]),
            gb("DimProduct", "Color", AttributeKind.CATEGORICAL,
               ["fk_fact_product"]),
            gb("DimProduct", "DealerPrice", AttributeKind.NUMERICAL,
               ["fk_fact_product"]),
            gb("DimProduct", "ListPrice", AttributeKind.NUMERICAL,
               ["fk_fact_product"]),
        ),
    )
    dates = Dimension(
        name="Date",
        tables=("DimDate",),
        hierarchies=(
            Hierarchy("Calendar", (
                AttributeRef("DimDate", "MonthName"),
                AttributeRef("DimDate", "CalendarQuarter"),
            )),
        ),
        groupbys=(
            gb("DimDate", "MonthName", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
            gb("DimDate", "CalendarQuarter", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
            gb("DimDate", "CalendarYearName", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
            gb("DimDate", "DayNameOfWeek", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
        ),
    )
    promotion = Dimension(
        name="Promotion",
        tables=("DimPromotion",),
        hierarchies=(
            Hierarchy("PromotionType", (
                AttributeRef("DimPromotion", "PromotionName"),
                AttributeRef("DimPromotion", "PromotionType"),
            )),
        ),
        groupbys=(
            gb("DimPromotion", "PromotionName", AttributeKind.CATEGORICAL,
               ["fk_fact_promotion"]),
            gb("DimPromotion", "PromotionType", AttributeKind.CATEGORICAL,
               ["fk_fact_promotion"]),
        ),
    )
    territory = Dimension(
        name="SalesTerritory",
        tables=("DimSalesTerritory",),
        hierarchies=(
            Hierarchy("Territory", (
                AttributeRef("DimSalesTerritory", "SalesTerritoryRegion"),
                AttributeRef("DimSalesTerritory", "SalesTerritoryCountry"),
                AttributeRef("DimSalesTerritory", "SalesTerritoryGroup"),
            )),
        ),
        groupbys=(
            gb("DimSalesTerritory", "SalesTerritoryRegion",
               AttributeKind.CATEGORICAL, ["fk_fact_territory"]),
            gb("DimSalesTerritory", "SalesTerritoryCountry",
               AttributeKind.CATEGORICAL, ["fk_fact_territory"]),
            gb("DimSalesTerritory", "SalesTerritoryGroup",
               AttributeKind.CATEGORICAL, ["fk_fact_territory"]),
        ),
    )
    currency = Dimension(
        name="Currency",
        tables=("DimCurrency",),
        groupbys=(
            gb("DimCurrency", "CurrencyName", AttributeKind.CATEGORICAL,
               ["fk_fact_currency"]),
        ),
    )

    searchable = {
        "DimCustomer": ["FirstName", "LastName", "EmailAddress",
                        "AddressLine1", "Phone", "Education", "Occupation"],
        "DimGeography": ["City", "StateProvinceName", "CountryRegionName",
                         "CountryRegionCode", "PostalCode"],
        "DimProduct": ["EnglishProductName", "ModelName", "Color",
                       "EnglishDescription"],
        "DimProductSubcategory": ["ProductSubcategoryName"],
        "DimProductCategory": ["ProductCategoryName"],
        "DimDate": ["MonthName", "CalendarQuarter", "CalendarYearName",
                    "DayNameOfWeek"],
        "DimPromotion": ["PromotionName", "PromotionType"],
        "DimCurrency": ["CurrencyName"],
        "DimSalesTerritory": ["SalesTerritoryRegion",
                              "SalesTerritoryCountry",
                              "SalesTerritoryGroup"],
    }

    return StarSchema(
        database=db,
        fact_table=fact,
        dimensions=[customer, product, dates, promotion, territory,
                    currency],
        measures=[REVENUE],
        searchable=searchable,
        synonyms=AW_ONLINE_SYNONYMS,
    )


#: Business-term seed for the metadata matcher on the demo star.  Terms
#: map onto declared group-by attributes or measures; dump/extend via
#: ``repro warehouse generate --synonyms out.json``.
AW_ONLINE_SYNONYMS: dict[str, tuple[str, ...]] = {
    "city": ("DimGeography.City",),
    "state": ("DimGeography.StateProvinceName",),
    "country": ("DimGeography.CountryRegionName",),
    "job": ("DimCustomer.Occupation",),
    "income": ("DimCustomer.YearlyIncome",),
    "category": ("DimProductCategory.ProductCategoryName",),
    "subcategory": ("DimProductSubcategory.ProductSubcategoryName",),
    "model": ("DimProduct.ModelName",),
    "color": ("DimProduct.Color",),
    "price": ("DimProduct.ListPrice",),
    "month": ("DimDate.MonthName",),
    "quarter": ("DimDate.CalendarQuarter",),
    "year": ("DimDate.CalendarYearName",),
    "weekday": ("DimDate.DayNameOfWeek",),
    "discount": ("DimPromotion.PromotionName",),
    "region": ("DimSalesTerritory.SalesTerritoryRegion",),
    "revenue": ("measure:revenue",),
    "sales": ("measure:revenue",),
    "turnover": ("measure:revenue",),
}


# ======================================================================
# AW_RESELLER
# ======================================================================
def build_aw_reseller(num_resellers: int = 240, num_employees: int = 90,
                      num_facts: int = 61000, seed: int = 43) -> StarSchema:
    """The reseller-sales warehouse (Figure 6 and the §6.3 replication)."""
    rng = make_rng(seed)
    db = Database("AW_RESELLER")

    _build_geography(db)
    _build_product_tables(db)
    _build_date(db)
    _build_promotions(db)
    _build_currency(db)
    _build_territory(db)

    # departments / employees -------------------------------------------
    departments = db.add_table(Table("DimDepartment", [
        integer("DepartmentKey", nullable=False),
        text("DepartmentName"),
        text("GroupName"),
    ], primary_key="DepartmentKey"))
    for key, (name, group) in enumerate(vocab.DEPARTMENTS, start=1):
        departments.insert({"DepartmentKey": key, "DepartmentName": name,
                            "GroupName": group})

    employees = db.add_table(Table("DimEmployee", [
        integer("EmployeeKey", nullable=False),
        text("FirstName"),
        text("LastName"),
        text("Title"),
        integer("DepartmentKey"),
    ], primary_key="EmployeeKey"))
    for key in range(1, num_employees + 1):
        employees.insert({
            "EmployeeKey": key,
            "FirstName": rng.choice(vocab.FIRST_NAMES),
            "LastName": rng.choice(vocab.LAST_NAMES),
            "Title": rng.choice(vocab.EMPLOYEE_TITLES),
            "DepartmentKey": rng.randrange(1, len(vocab.DEPARTMENTS) + 1),
        })

    # business types (a small Reseller-dimension hierarchy table) ---------
    business_types = db.add_table(Table("DimBusinessType", [
        integer("BusinessTypeKey", nullable=False),
        text("BusinessTypeName"),
        text("MarketSegment"),
    ], primary_key="BusinessTypeKey"))
    for key, (name, segment) in enumerate(vocab.BUSINESS_TYPES, start=1):
        business_types.insert({"BusinessTypeKey": key,
                               "BusinessTypeName": name,
                               "MarketSegment": segment})

    # resellers -----------------------------------------------------------
    resellers = db.add_table(Table("DimReseller", [
        integer("ResellerKey", nullable=False),
        text("ResellerName"),
        integer("BusinessTypeKey"),
        float_("AnnualSales"),
        float_("AnnualRevenue"),
        integer("NumberOfEmployees"),
        integer("GeographyKey"),
    ], primary_key="ResellerKey"))
    geo_of_city = _geo_lookup()
    cities = list(geo_of_city)
    adjectives, nouns = vocab.RESELLER_NAME_PARTS
    seen_names: set[str] = set()
    reseller_geo: list[tuple[str, str]] = []
    for key in range(1, num_resellers + 1):
        while True:
            name = f"{rng.choice(adjectives)} {rng.choice(nouns)}"
            if name not in seen_names:
                seen_names.add(name)
                break
            name = f"{name} {key}"
            seen_names.add(name)
            break
        business_key = rng.randrange(1, len(vocab.BUSINESS_TYPES) + 1)
        business = vocab.BUSINESS_TYPES[business_key - 1][0]
        scale = {"Warehouse": 3.0, "Value Added Reseller": 1.5,
                 "Specialty Bike Shop": 0.8}[business]
        # domains are intentionally coarse (AdventureWorks stores these in
        # round steps), so distinct-value ground-truth bucketization stays
        # in the same regime as the paper's
        annual_sales = round(rng.uniform(0.3, 1.0) * scale * 1_000_000,
                             -5) + 100_000
        city = rng.choice(cities)
        geo_key, state, country = geo_of_city[city]
        employees_raw = max(2, int(annual_sales / 30000
                                   * rng.uniform(0.6, 1.4)))
        resellers.insert({
            "ResellerKey": key, "ResellerName": name,
            "BusinessTypeKey": business_key,
            "AnnualSales": annual_sales,
            "AnnualRevenue": round(annual_sales * rng.uniform(0.08, 0.15),
                                   -4),
            "NumberOfEmployees": (employees_raw // 5) * 5,
            "GeographyKey": geo_key,
        })
        reseller_geo.append((state, country))

    # fact table ----------------------------------------------------------
    fact = db.add_table(Table("FactResellerSales", [
        integer("SalesOrderKey", nullable=False),
        integer("ResellerKey"),
        integer("EmployeeKey"),
        integer("ProductKey"),
        integer("DateKey"),
        integer("PromotionKey"),
        integer("CurrencyKey"),
        integer("SalesTerritoryKey"),
        float_("UnitPrice"),
        integer("Quantity"),
    ], primary_key="SalesOrderKey"))

    db.add_foreign_key("fk_fact_reseller", "FactResellerSales",
                       "ResellerKey", "DimReseller", "ResellerKey")
    db.add_foreign_key("fk_reseller_geo", "DimReseller", "GeographyKey",
                       "DimGeography", "GeographyKey")
    db.add_foreign_key("fk_reseller_type", "DimReseller", "BusinessTypeKey",
                       "DimBusinessType", "BusinessTypeKey")
    db.add_foreign_key("fk_fact_employee", "FactResellerSales",
                       "EmployeeKey", "DimEmployee", "EmployeeKey")
    db.add_foreign_key("fk_employee_dept", "DimEmployee", "DepartmentKey",
                       "DimDepartment", "DepartmentKey")
    db.add_foreign_key("fk_fact_product", "FactResellerSales", "ProductKey",
                       "DimProduct", "ProductKey")
    db.add_foreign_key("fk_fact_date", "FactResellerSales", "DateKey",
                       "DimDate", "DateKey")
    db.add_foreign_key("fk_fact_promotion", "FactResellerSales",
                       "PromotionKey", "DimPromotion", "PromotionKey")
    db.add_foreign_key("fk_fact_currency", "FactResellerSales",
                       "CurrencyKey", "DimCurrency", "CurrencyKey")
    db.add_foreign_key("fk_fact_territory", "FactResellerSales",
                       "SalesTerritoryKey", "DimSalesTerritory",
                       "SalesTerritoryKey")

    _generate_reseller_facts(db, rng, num_facts, reseller_geo,
                             num_employees)

    return _reseller_schema(db)


def _generate_reseller_facts(db: Database, rng, num_facts: int,
                             reseller_geo: list[tuple[str, str]],
                             num_employees: int) -> None:
    fact = db.table("FactResellerSales")
    products = vocab.PRODUCTS
    resellers = db.table("DimReseller")
    type_names = db.table("DimBusinessType").column_values(
        "BusinessTypeName")
    business_types = [
        type_names[key - 1]
        for key in resellers.column_values("BusinessTypeKey")
    ]
    num_resellers = len(resellers)
    reseller_weights = zipf_weights(num_resellers, skew=0.5)
    date_keys = db.table("DimDate").column_values("DateKey")
    month_weights = _product_month_weights()
    base_popularity = zipf_weights(len(products), skew=0.3)

    # resellers buy by business type: warehouses skew to components in
    # bulk, specialty shops to bikes
    type_affinity = {
        "Warehouse": {"Components": 2.0, "Accessories": 1.3,
                      "Bikes": 0.6, "Clothing": 0.9},
        "Value Added Reseller": {"Components": 1.0, "Accessories": 1.1,
                                 "Bikes": 1.2, "Clothing": 1.0},
        "Specialty Bike Shop": {"Components": 0.7, "Accessories": 1.0,
                                "Bikes": 2.0, "Clothing": 1.1},
    }
    per_reseller: list[list[float]] = []
    for idx in range(num_resellers):
        affinity = type_affinity[business_types[idx]]
        row = []
        for p_idx, (_name, sub, *_rest) in enumerate(products):
            category = vocab.SUBCATEGORY_TO_CATEGORY[sub]
            row.append(base_popularity[p_idx] * affinity[category])
        per_reseller.append(row)

    product_indices = list(range(len(products)))
    reseller_indices = list(range(num_resellers))
    promo_pcts = {key: pct for key, (_n, _t, pct) in
                  enumerate(vocab.PROMOTIONS, start=1)}
    for order in range(1, num_facts + 1):
        r_idx = rng.choices(reseller_indices, weights=reseller_weights)[0]
        date_key = rng.choice(date_keys)
        month = (date_key // 100) % 100 - 1
        weights = [per_reseller[r_idx][p] * month_weights[month][p]
                   for p in product_indices]
        p_idx = rng.choices(product_indices, weights=weights)[0]
        name, _sub, model, _color, dealer, _list_price, _desc = \
            products[p_idx]
        promo_key = _promotion_for(rng, name, model)
        unit_price = round(dealer * (1.0 - promo_pcts[promo_key]), 2)
        state, country = reseller_geo[r_idx]
        fact.insert({
            "SalesOrderKey": order,
            "ResellerKey": r_idx + 1,
            "EmployeeKey": rng.randrange(1, num_employees + 1),
            "ProductKey": p_idx + 1,
            "DateKey": date_key,
            "PromotionKey": promo_key,
            "CurrencyKey": _currency_key_for(country),
            "SalesTerritoryKey": _territory_key_for(state, country),
            "UnitPrice": unit_price,
            "Quantity": rng.choices([2, 4, 6, 10, 20],
                                    weights=[6, 5, 4, 2, 1])[0],
        })


def _reseller_schema(db: Database) -> StarSchema:
    fact = "FactResellerSales"

    def gb(table: str, column: str, kind: AttributeKind,
           fk_chain: list[str]) -> GroupByAttribute:
        return GroupByAttribute(
            AttributeRef(table, column), kind,
            path_from_fk_names(db, fact, fk_chain),
        )

    reseller = Dimension(
        name="Reseller",
        tables=("DimReseller", "DimGeography", "DimBusinessType"),
        hierarchies=(
            Hierarchy("ResellerGeography", (
                AttributeRef("DimGeography", "City"),
                AttributeRef("DimGeography", "StateProvinceName"),
                AttributeRef("DimGeography", "CountryRegionName"),
            )),
            Hierarchy("BusinessType", (
                AttributeRef("DimBusinessType", "BusinessTypeName"),
                AttributeRef("DimBusinessType", "MarketSegment"),
            )),
        ),
        groupbys=(
            gb("DimBusinessType", "BusinessTypeName",
               AttributeKind.CATEGORICAL,
               ["fk_fact_reseller", "fk_reseller_type"]),
            gb("DimBusinessType", "MarketSegment",
               AttributeKind.CATEGORICAL,
               ["fk_fact_reseller", "fk_reseller_type"]),
            gb("DimReseller", "AnnualSales", AttributeKind.NUMERICAL,
               ["fk_fact_reseller"]),
            gb("DimReseller", "AnnualRevenue", AttributeKind.NUMERICAL,
               ["fk_fact_reseller"]),
            gb("DimReseller", "NumberOfEmployees", AttributeKind.NUMERICAL,
               ["fk_fact_reseller"]),
            gb("DimGeography", "City", AttributeKind.CATEGORICAL,
               ["fk_fact_reseller", "fk_reseller_geo"]),
            gb("DimGeography", "StateProvinceName",
               AttributeKind.CATEGORICAL,
               ["fk_fact_reseller", "fk_reseller_geo"]),
            gb("DimGeography", "CountryRegionName",
               AttributeKind.CATEGORICAL,
               ["fk_fact_reseller", "fk_reseller_geo"]),
        ),
    )
    employee = Dimension(
        name="Employee",
        tables=("DimEmployee", "DimDepartment"),
        hierarchies=(
            Hierarchy("Department", (
                AttributeRef("DimDepartment", "DepartmentName"),
                AttributeRef("DimDepartment", "GroupName"),
            )),
        ),
        groupbys=(
            gb("DimEmployee", "Title", AttributeKind.CATEGORICAL,
               ["fk_fact_employee"]),
            gb("DimDepartment", "DepartmentName", AttributeKind.CATEGORICAL,
               ["fk_fact_employee", "fk_employee_dept"]),
        ),
    )
    product = Dimension(
        name="Product",
        tables=("DimProduct", "DimProductSubcategory", "DimProductCategory"),
        hierarchies=(
            Hierarchy("ProductCategory", (
                AttributeRef("DimProduct", "EnglishProductName"),
                AttributeRef("DimProductSubcategory",
                             "ProductSubcategoryName"),
                AttributeRef("DimProductCategory", "ProductCategoryName"),
            )),
        ),
        groupbys=(
            gb("DimProductSubcategory", "ProductSubcategoryName",
               AttributeKind.CATEGORICAL,
               ["fk_fact_product", "fk_product_sub"]),
            gb("DimProductCategory", "ProductCategoryName",
               AttributeKind.CATEGORICAL,
               ["fk_fact_product", "fk_product_sub", "fk_sub_category"]),
            gb("DimProduct", "ModelName", AttributeKind.CATEGORICAL,
               ["fk_fact_product"]),
            gb("DimProduct", "Color", AttributeKind.CATEGORICAL,
               ["fk_fact_product"]),
            gb("DimProduct", "DealerPrice", AttributeKind.NUMERICAL,
               ["fk_fact_product"]),
        ),
    )
    dates = Dimension(
        name="Date",
        tables=("DimDate",),
        hierarchies=(
            Hierarchy("Calendar", (
                AttributeRef("DimDate", "MonthName"),
                AttributeRef("DimDate", "CalendarQuarter"),
            )),
        ),
        groupbys=(
            gb("DimDate", "MonthName", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
            gb("DimDate", "CalendarQuarter", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
            gb("DimDate", "CalendarYearName", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
        ),
    )
    promotion = Dimension(
        name="Promotion",
        tables=("DimPromotion",),
        hierarchies=(
            Hierarchy("PromotionType", (
                AttributeRef("DimPromotion", "PromotionName"),
                AttributeRef("DimPromotion", "PromotionType"),
            )),
        ),
        groupbys=(
            gb("DimPromotion", "PromotionName", AttributeKind.CATEGORICAL,
               ["fk_fact_promotion"]),
            gb("DimPromotion", "PromotionType", AttributeKind.CATEGORICAL,
               ["fk_fact_promotion"]),
        ),
    )
    territory = Dimension(
        name="SalesTerritory",
        tables=("DimSalesTerritory",),
        hierarchies=(
            Hierarchy("Territory", (
                AttributeRef("DimSalesTerritory", "SalesTerritoryRegion"),
                AttributeRef("DimSalesTerritory", "SalesTerritoryCountry"),
                AttributeRef("DimSalesTerritory", "SalesTerritoryGroup"),
            )),
        ),
        groupbys=(
            gb("DimSalesTerritory", "SalesTerritoryRegion",
               AttributeKind.CATEGORICAL, ["fk_fact_territory"]),
            gb("DimSalesTerritory", "SalesTerritoryCountry",
               AttributeKind.CATEGORICAL, ["fk_fact_territory"]),
            gb("DimSalesTerritory", "SalesTerritoryGroup",
               AttributeKind.CATEGORICAL, ["fk_fact_territory"]),
        ),
    )
    currency = Dimension(
        name="Currency",
        tables=("DimCurrency",),
        groupbys=(
            gb("DimCurrency", "CurrencyName", AttributeKind.CATEGORICAL,
               ["fk_fact_currency"]),
        ),
    )

    searchable = {
        "DimReseller": ["ResellerName"],
        "DimBusinessType": ["BusinessTypeName", "MarketSegment"],
        "DimEmployee": ["FirstName", "LastName", "Title"],
        "DimDepartment": ["DepartmentName", "GroupName"],
        "DimGeography": ["City", "StateProvinceName", "CountryRegionName",
                         "CountryRegionCode", "PostalCode"],
        "DimProduct": ["EnglishProductName", "ModelName", "Color",
                       "EnglishDescription"],
        "DimProductSubcategory": ["ProductSubcategoryName"],
        "DimProductCategory": ["ProductCategoryName"],
        "DimDate": ["MonthName", "CalendarQuarter", "CalendarYearName",
                    "DayNameOfWeek"],
        "DimPromotion": ["PromotionName", "PromotionType"],
        "DimCurrency": ["CurrencyName"],
        "DimSalesTerritory": ["SalesTerritoryRegion",
                              "SalesTerritoryCountry",
                              "SalesTerritoryGroup"],
    }

    return StarSchema(
        database=db,
        fact_table=fact,
        dimensions=[reseller, employee, product, dates, promotion,
                    territory, currency],
        measures=[REVENUE],
        searchable=searchable,
    )
