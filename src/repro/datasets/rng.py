"""Deterministic generation helpers.

Every dataset builder threads an explicit :class:`random.Random` instance
through these helpers — no global RNG state, so two builds with the same
seed are identical bit for bit.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed: int) -> random.Random:
    """A fresh, isolated RNG."""
    return random.Random(seed)


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """One draw from ``items`` proportional to ``weights``."""
    return rng.choices(items, weights=weights, k=1)[0]


def zipf_weights(n: int, skew: float = 1.0) -> list[float]:
    """Zipf-like weights for ``n`` ranks (rank 1 most likely).

    Real sales data is heavy-tailed: a few products/customers dominate.
    ``skew=0`` degenerates to uniform.
    """
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def lognormal_income(rng: random.Random, base: float = 60000.0,
                     sigma: float = 0.5, step: float = 10000.0) -> float:
    """An income-like positive value, rounded to ``step`` (AdventureWorks
    stores yearly income in 10k steps)."""
    value = rng.lognormvariate(0.0, sigma) * base
    value = max(step, min(value, 200000.0))
    return round(value / step) * step
