"""Vocabulary pools for the synthetic AdventureWorks-like warehouses.

The pools are hand-curated so that every keyword appearing in the paper's
Tables 1-3 resolves against the generated data the way the paper's
narrative expects: "California" is a state province *and* part of two
street addresses, "Sydney" is a city *and* a customer first name (the
paper's worst-case query), "Mountain Bikes" is a product subcategory,
"fernando35@adventure-works.com" is a concrete customer email, and so on.

Products are (name, subcategory, model, color, dealer price, list price,
description) tuples; the hierarchy is
EnglishProductName → ProductSubcategoryName → ProductCategoryName.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# product hierarchy
# ----------------------------------------------------------------------
SUBCATEGORY_TO_CATEGORY: dict[str, str] = {
    # Bikes
    "Mountain Bikes": "Bikes",
    "Road Bikes": "Bikes",
    "Touring Bikes": "Bikes",
    # Components
    "Handlebars": "Components",
    "Brakes": "Components",
    "Chains": "Components",
    "Cranksets": "Components",
    "Forks": "Components",
    "Headsets": "Components",
    "Wheels": "Components",
    "Road Frames": "Components",
    "Mountain Frames": "Components",
    "Pedals": "Components",
    "Saddles": "Components",
    "Fasteners": "Components",
    # Clothing
    "Caps": "Clothing",
    "Gloves": "Clothing",
    "Jerseys": "Clothing",
    "Socks": "Clothing",
    "Tights": "Clothing",
    "Vests": "Clothing",
    "Bib-Shorts": "Clothing",
    # Accessories
    "Helmets": "Accessories",
    "Tires and Tubes": "Accessories",
    "Bottles and Cages": "Accessories",
    "Fenders": "Accessories",
    "Pumps": "Accessories",
    "Hydration Packs": "Accessories",
    "Lights": "Accessories",
    "Locks": "Accessories",
    "Bike Racks": "Accessories",
}

# (name, subcategory, model, color, dealer_price, list_price, description)
PRODUCTS: list[tuple[str, str, str, str, float, float, str]] = [
    # Bikes -----------------------------------------------------------
    ("Mountain-100 Silver, 38", "Mountain Bikes", "Mountain-100", "Silver",
     1912.15, 3399.99,
     "Top-of-the-line competition mountain bike; handcrafted aluminum "
     "frame absorbs bumps on or off-road"),
    ("Mountain-100 Black, 42", "Mountain Bikes", "Mountain-100", "Black",
     1898.09, 3374.99,
     "Top-of-the-line competition mountain bike; handcrafted aluminum "
     "frame absorbs bumps on or off-road"),
    ("Mountain-200 Silver, 42", "Mountain Bikes", "Mountain-200", "Silver",
     1391.99, 2319.99,
     "Serious back-country riding with a durable yellow-tinted frame"),
    ("Mountain-200 Black, 38", "Mountain Bikes", "Mountain-200", "Black",
     1370.98, 2294.99,
     "Serious back-country riding with a durable frame"),
    ("Mountain-400-W Silver, 26", "Mountain Bikes", "Mountain-400-W",
     "Silver", 419.78, 769.49,
     "A true multi-sport bike for women that offers streamlined riding"),
    ("Mountain-500 Silver, 40", "Mountain Bikes", "Mountain-500", "Silver",
     308.22, 564.99,
     "Suitable for any type of riding, on or off-road"),
    ("Mountain-500 Black, 44", "Mountain Bikes", "Mountain-500", "Black",
     294.58, 539.99,
     "Suitable for any type of riding, on or off-road"),
    ("Road-150 Red, 62", "Road Bikes", "Road-150", "Red",
     2171.29, 3578.27,
     "This bike is ridden by race winners; lightest and most flexible"),
    ("Road-250 Black, 48", "Road Bikes", "Road-250", "Black",
     1554.95, 2443.35,
     "Alluminum-alloy frame provides a light stiff ride"),
    ("Road-650 Red, 58", "Road Bikes", "Road-650", "Red",
     486.71, 782.99,
     "Value-priced bike with many features of our top-of-the-line models"),
    ("Touring-1000 Blue, 46", "Touring Bikes", "Touring-1000", "Blue",
     1481.94, 2384.07,
     "Travel in style and comfort; carry your camping gear"),
    ("Touring-2000 Blue, 50", "Touring Bikes", "Touring-2000", "Blue",
     755.15, 1214.85,
     "The plush custom saddle keeps you riding all day"),
    ("Touring-3000 Yellow, 54", "Touring Bikes", "Touring-3000", "Yellow",
     461.44, 742.35,
     "All-around bike for on or off-road touring promotion favorite"),
    # Accessories ------------------------------------------------------
    ("Sport-100 Helmet, Red", "Helmets", "Sport-100", "Red",
     20.99, 34.99, "Universal fit, well-vented, lightweight"),
    ("Sport-100 Helmet, Black", "Helmets", "Sport-100", "Black",
     20.99, 34.99, "Universal fit, well-vented, lightweight"),
    ("HL Mountain Tire", "Tires and Tubes", "HL Mountain Tire", "Black",
     21.18, 35.00, "Incredible traction, lightweight carbon reinforced"),
    ("LL Mountain Tire", "Tires and Tubes", "LL Mountain Tire", "Black",
     14.93, 24.99, "Comparable traction, less expensive wear"),
    ("Mountain Tire Tube", "Tires and Tubes", "Mountain Tire Tube", "NA",
     2.99, 4.99, "Self-sealing tube for mountain tires"),
    ("Road Tire Tube", "Tires and Tubes", "Road Tire Tube", "NA",
     2.39, 3.99, "Self-sealing tube for road tires"),
    ("Touring Tire", "Tires and Tubes", "Touring Tire", "Black",
     17.19, 28.99, "Designed for touring bikes with all-weather tread"),
    ("Water Bottle - 30 oz.", "Bottles and Cages", "Water Bottle", "NA",
     3.09, 4.99, "AWC logo water bottle, holds 30 oz"),
    ("Mountain Bottle Cage", "Bottles and Cages", "Mountain Bottle Cage",
     "NA", 6.18, 9.99, "Tough aluminum cage holds bottle securely"),
    ("Fender Set - Mountain", "Fenders", "Fender Set - Mountain", "NA",
     13.59, 21.98, "Clip-on fender set for mountain bikes"),
    ("Mountain Pump", "Pumps", "Mountain Pump", "NA",
     15.31, 24.99, "Simple and light mini mountain pump with gauge"),
    ("Hydration Pack - 70 oz.", "Hydration Packs", "Hydration Pack", "Silver",
     34.02, 54.99, "Versatile pack with hydration reservoir"),
    ("Headlights - Dual-Beam", "Lights", "Headlights - Dual-Beam", "NA",
     21.49, 34.99, "Dual-beam weatherproof headlight with halogen bulbs"),
    ("Headlights - Weatherproof", "Lights", "Headlights - Weatherproof",
     "NA", 27.89, 44.99, "Rugged weatherproof headlight"),
    ("Taillights - Battery-Powered", "Lights", "Taillights", "NA",
     8.59, 13.99, "Battery-powered taillight with flashing mode"),
    ("Cable Lock", "Locks", "Cable Lock", "NA",
     15.36, 25.00, "Wraps to fit front and rear tires with internal lock"),
    ("Hitch Rack - 4-Bike", "Bike Racks", "Hitch Rack", "NA",
     73.78, 120.00, "Carries 4 bikes securely; fits any hitch"),
    # Clothing ---------------------------------------------------------
    ("Mountain Bike Socks, M", "Socks", "Mountain Bike Socks", "White",
     5.70, 9.50, "Combination of natural and synthetic fibers"),
    ("Mountain Bike Socks, L", "Socks", "Mountain Bike Socks", "White",
     5.70, 9.50, "Combination of natural and synthetic fibers"),
    ("Cycling Cap", "Caps", "Cycling Cap", "Red",
     5.39, 8.99, "Traditional style with a flip-up brim"),
    ("AWC Logo Cap", "Caps", "AWC Logo Cap", "Multi",
     5.39, 8.99, "Traditional style with the AWC logo"),
    ("Long-Sleeve Logo Jersey, M", "Jerseys", "Long-Sleeve Logo Jersey",
     "Multi", 29.99, 49.99, "Unisex long-sleeve AWC logo microfiber jersey"),
    ("Short-Sleeve Classic Jersey, L", "Jerseys",
     "Short-Sleeve Classic Jersey", "Yellow", 32.39, 53.99,
     "Short sleeve classic breathable jersey"),
    ("Half-Finger Gloves, M", "Gloves", "Half-Finger Gloves", "Black",
     14.72, 24.49, "Synthetic palm, flexible spandex back"),
    ("Full-Finger Gloves, L", "Gloves", "Full-Finger Gloves", "Black",
     22.63, 37.99, "Full padding, improved finger flex"),
    ("Classic Vest, S", "Vests", "Classic Vest", "Blue",
     38.41, 63.50, "Light-weight, wind-resistant classic vest"),
    ("Women's Tights, M", "Tights", "Women's Tights", "Black",
     44.88, 74.99, "Warm spandex tights with reflective accents"),
    ("Men's Bib-Shorts, M", "Bib-Shorts", "Men's Bib-Shorts", "Multi",
     53.64, 89.99, "Stitched shorts with anatomic chamois"),
    # Components -------------------------------------------------------
    ("HL Road Frame - Black, 58", "Road Frames", "HL Road Frame", "Black",
     868.63, 1431.50, "Our lightest and best quality aluminum road frame"),
    ("ML Road Frame - Red, 52", "Road Frames", "ML Road Frame", "Red",
     360.94, 594.83, "Lightweight butted aluminum road frame"),
    ("HL Mountain Frame - Silver, 42", "Mountain Frames",
     "HL Mountain Frame", "Silver", 818.96, 1364.50,
     "Each frame is handcrafted in our Bothell facility"),
    ("LL Mountain Frame - Black, 44", "Mountain Frames",
     "LL Mountain Frame", "Black", 144.59, 249.79,
     "Our best value mountain frame"),
    ("LL Mountain Front Wheel", "Wheels", "LL Mountain Front Wheel",
     "Black", 36.45, 60.75, "Replacement mountain front wheel for entry-level rider"),
    ("ML Mountain Front Wheel", "Wheels", "ML Mountain Front Wheel",
     "Black", 125.39, 209.03, "Replacement mountain front wheel"),
    ("HL Fork", "Forks", "HL Fork", "NA",
     137.92, 229.49, "High-performance carbon road fork with curved legs"),
    ("ML Fork", "Forks", "ML Fork", "NA",
     105.19, 175.49, "Sealed cartridge bearings; Horquilla GM compatible"),
    ("Blade", "Forks", "Blade", "NA",
     0.53, 0.88, "Fork blade replacement part"),
    ("LL Headset", "Headsets", "LL Headset", "NA",
     20.85, 34.74, "Threadless headset replacement"),
    ("HL Headset", "Headsets", "HL Headset", "NA",
     74.80, 124.73, "Sealed cartridge threadless headset"),
    ("HL Mountain Handlebars", "Handlebars", "HL Mountain Handlebars", "NA",
     72.80, 120.27, "All-purpose bar for on or off-road; fully adjustable"),
    ("LL Road Handlebars", "Handlebars", "LL Road Handlebars", "NA",
     26.70, 44.54, "All-purpose bar for on or off-road"),
    ("Chain", "Chains", "Chain", "Silver",
     12.14, 20.24, "Superior shifting performance chain"),
    ("Front Brakes", "Brakes", "Front Brakes", "Silver",
     63.90, 106.50, "All-weather brake pads, dual-pivot front brakes"),
    ("Rear Brakes", "Brakes", "Rear Brakes", "Silver",
     63.90, 106.50, "All-weather brake pads, dual-pivot rear brakes"),
    ("HL Crankset", "Cranksets", "HL Crankset", "Black",
     242.99, 404.99, "Triple crankset, stiff and efficient"),
    ("Chainring", "Cranksets", "Chainring", "Black",
     0.94, 1.56, "Steel chainring replacement"),
    ("Chainring Bolts", "Cranksets", "Chainring Bolts", "Silver",
     0.53, 0.88, "Hardened steel chainring bolts"),
    ("LL Mountain Pedal", "Pedals", "LL Mountain Pedal", "Silver",
     24.30, 40.49, "Expanded platform for all-around pedaling"),
    ("HL Road Pedal", "Pedals", "HL Road Pedal", "Silver",
     48.59, 80.99, "Lightweight performance road pedal"),
    ("HL Mountain Saddle", "Saddles", "HL Mountain Saddle", "NA",
     31.72, 52.64, "Anatomic design for a full-suspension mountain saddle"),
    ("LL Road Saddle", "Saddles", "LL Road Saddle", "NA",
     16.52, 27.12, "Lightweight road saddle with synthetic leather"),
    ("Flat Washer 1", "Fasteners", "Flat Washer", "NA",
     0.16, 0.27, "Flat washer hardened steel"),
    ("Flat Washer 4", "Fasteners", "Flat Washer", "NA",
     0.18, 0.31, "Flat washer hardened steel"),
    ("Keyed Washer", "Fasteners", "Keyed Washer", "NA",
     0.17, 0.28, "Keyed washer for locking assemblies"),
    ("Internal Lock Washer 1", "Fasteners", "Internal Lock Washer", "NA",
     0.19, 0.32, "Internal lock washer for hub assemblies"),
    ("External Lock Washer 2", "Fasteners", "External Lock Washer", "NA",
     0.19, 0.32, "External lock washer for hub assemblies"),
    ("Hex Bolt 1", "Fasteners", "Hex Bolt", "NA",
     0.32, 0.53, "Hex head bolts in metric sizes"),
    ("Hex Bolt 2", "Fasteners", "Hex Bolt", "NA",
     0.35, 0.58, "Hex head bolts in metric sizes"),
    ("Metal Plate 2", "Fasteners", "Metal Plate", "NA",
     4.28, 7.13, "Stamped metal plate reinforcement"),
    ("Metal Sheet 1", "Fasteners", "Metal Sheet", "NA",
     5.10, 8.49, "Aluminum metal sheet stock"),
    ("Silver Hub", "Wheels", "Silver Hub", "Silver",
     30.12, 50.20, "Polished silver hub with sealed bearings"),
]

# ----------------------------------------------------------------------
# geography: (city, state_province, country, country_code, postal)
# ----------------------------------------------------------------------
GEOGRAPHIES: list[tuple[str, str, str, str, str]] = [
    ("Seattle", "Washington", "United States", "US", "98104"),
    ("Spokane", "Washington", "United States", "US", "99202"),
    ("Portland", "Oregon", "United States", "US", "97205"),
    ("San Francisco", "California", "United States", "US", "94109"),
    ("Palo Alto", "California", "United States", "US", "94303"),
    ("Santa Cruz", "California", "United States", "US", "95062"),
    ("San Jose", "California", "United States", "US", "95112"),
    ("Los Angeles", "California", "United States", "US", "90012"),
    ("Torrance", "California", "United States", "US", "90505"),
    ("Central Valley", "California", "United States", "US", "96019"),
    ("Denver", "Colorado", "United States", "US", "80202"),
    ("Columbus", "Ohio", "United States", "US", "43215"),
    ("Ithaca", "New York", "United States", "US", "14850"),
    ("New York", "New York", "United States", "US", "10001"),
    ("San Antonio", "Texas", "United States", "US", "78205"),
    ("Austin", "Texas", "United States", "US", "78701"),
    ("Sydney", "New South Wales", "Australia", "AU", "2000"),
    ("Alexandria", "New South Wales", "Australia", "AU", "2015"),
    ("Newcastle", "New South Wales", "Australia", "AU", "2300"),
    ("Melbourne", "Victoria", "Australia", "AU", "3000"),
    ("Berlin", "Brandenburg", "Germany", "DE", "10115"),
    ("Frankfurt", "Hessen", "Germany", "DE", "60311"),
    ("Paris", "Seine (Paris)", "France", "FR", "75002"),
    ("Versailles", "Yveline", "France", "FR", "78000"),
    ("Lyon", "Loiret", "France", "FR", "45000"),
    ("London", "England", "United Kingdom", "GB", "SW19"),
    ("Oxford", "England", "United Kingdom", "GB", "OX1"),
    ("Vancouver", "British Columbia", "Canada", "CA", "V7L"),
    ("Victoria", "British Columbia", "Canada", "CA", "V8V"),
    ("Toronto", "Ontario", "Canada", "CA", "M4B"),
]

# ----------------------------------------------------------------------
# sales territories: (region, country, group)
# ----------------------------------------------------------------------
TERRITORIES: list[tuple[str, str, str]] = [
    ("Northwest", "United States", "North America"),
    ("Northeast", "United States", "North America"),
    ("Central", "United States", "North America"),
    ("Southwest", "United States", "North America"),
    ("Southeast", "United States", "North America"),
    ("Canada", "Canada", "North America"),
    ("France", "France", "Europe"),
    ("Germany", "Germany", "Europe"),
    ("United Kingdom", "United Kingdom", "Europe"),
    ("Australia", "Australia", "Pacific"),
]

COUNTRY_TO_TERRITORIES: dict[str, list[str]] = {
    "United States": ["Northwest", "Northeast", "Central",
                      "Southwest", "Southeast"],
    "Canada": ["Canada"],
    "France": ["France"],
    "Germany": ["Germany"],
    "United Kingdom": ["United Kingdom"],
    "Australia": ["Australia"],
}

STATE_TO_TERRITORY: dict[str, str] = {
    "Washington": "Northwest",
    "Oregon": "Northwest",
    "California": "Southwest",
    "Texas": "Southwest",
    "Colorado": "Central",
    "Ohio": "Central",
    "New York": "Northeast",
}

# ----------------------------------------------------------------------
# promotions: (name, type, discount_pct)
# ----------------------------------------------------------------------
PROMOTIONS: list[tuple[str, str, float]] = [
    ("No Discount", "No Discount", 0.0),
    ("Volume Discount 11 to 14", "Volume Discount", 0.02),
    ("Volume Discount 15 to 24", "Volume Discount", 0.05),
    ("Mountain Tire Sale", "Excess Inventory", 0.50),
    ("Road-650 Overstock", "Excess Inventory", 0.30),
    ("Touring-3000 Promotion", "New Product", 0.15),
    ("Half-Price Pedal Sale", "Seasonal Discount", 0.50),
    ("Sport Helmet Discount", "Seasonal Discount", 0.10),
    ("Mountain-100 Clearance Sale", "Discontinued Product", 0.35),
    ("LL Road Frame Sale", "Excess Inventory", 0.35),
]

CURRENCIES: list[str] = [
    "US Dollar", "Canadian Dollar", "Australian Dollar",
    "EURO", "Deutsche Mark", "United Kingdom Pound", "French Franc",
]

COUNTRY_TO_CURRENCY: dict[str, str] = {
    "United States": "US Dollar",
    "Canada": "Canadian Dollar",
    "Australia": "Australian Dollar",
    "Germany": "Deutsche Mark",
    "France": "French Franc",
    "United Kingdom": "United Kingdom Pound",
}

# ----------------------------------------------------------------------
# people
# ----------------------------------------------------------------------
FIRST_NAMES: list[str] = [
    "Jon", "Eugene", "Ruben", "Christy", "Elizabeth", "Julio", "Janet",
    "Marco", "Rob", "Shannon", "Jacquelyn", "Curtis", "Lauren", "Ian",
    "Sydney", "Chloe", "Wyatt", "Shannon", "Clarence", "Luke", "Jordan",
    "Destiny", "Ethan", "Seth", "Russell", "Alejandro", "Harold", "Jessie",
    "Jill", "Jimmy", "Fernando", "Cesar", "Jose", "Mason", "Blake",
    "Gabriella", "Katherine", "Johnny", "Isabella", "Marcus",
]

LAST_NAMES: list[str] = [
    "Yang", "Huang", "Torres", "Zhu", "Johnson", "Ruiz", "Alvarez",
    "Mehta", "Verhoff", "Carlson", "Suarez", "Lu", "Walker", "Jenkins",
    "Rogers", "Young", "Hill", "Carter", "Turner", "Diaz", "King",
    "Wilson", "Martinez", "Sanchez", "Perry", "Coleman", "Powell",
    "Long", "Patterson", "Hughes", "Flores", "Washington", "Butler",
    "Simmons", "Foster", "Gonzales", "Bryant", "Alexander", "Russell",
    "Griffin",
]

STREETS: list[str] = [
    "California Street", "Corrinne Court", "Main Street", "Oak Avenue",
    "Pine Road", "Cedar Lane", "Maple Drive", "Birch Boulevard",
    "Lakeview Terrace", "Hillcrest Avenue", "Sunset Boulevard",
    "Riverside Drive", "Parkway North", "Elm Street", "Willow Way",
]

EDUCATIONS: list[str] = [
    "Bachelors", "Graduate Degree", "High School",
    "Partial College", "Partial High School",
]

OCCUPATIONS: list[str] = [
    "Professional", "Management", "Skilled Manual", "Clerical", "Manual",
]

COMMUTE_DISTANCES: list[str] = [
    "0-1 Miles", "1-2 Miles", "2-5 Miles", "5-10 Miles", "10+ Miles",
]

MONTHS: list[str] = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
]

DAY_NAMES: list[str] = [
    "Monday", "Tuesday", "Wednesday", "Thursday",
    "Friday", "Saturday", "Sunday",
]

# ----------------------------------------------------------------------
# reseller-side pools (AW_RESELLER)
# ----------------------------------------------------------------------
RESELLER_NAME_PARTS: tuple[list[str], list[str]] = (
    ["Valley", "Metro", "Riverside", "Coastal", "Summit", "Urban",
     "Rustic", "Premier", "Golden", "Pacific", "Evergreen", "Pioneer",
     "Cascade", "Liberty", "Granite", "Harbor", "Sunrise", "Redwood"],
    ["Bicycle Specialists", "Bike Store", "Cycle Shop", "Sports Equipment",
     "Bike Works", "Cycling Supplies", "Outdoor Outfitters",
     "Bicycle Company", "Wheel Emporium", "Sport Cycles"],
)

BUSINESS_TYPES: list[tuple[str, str]] = [
    # (business type, market segment) — a two-level reseller hierarchy
    ("Value Added Reseller", "Wholesale"),
    ("Specialty Bike Shop", "Retail"),
    ("Warehouse", "Wholesale"),
]

EMPLOYEE_TITLES: list[str] = [
    "Sales Representative", "Sales Manager", "Account Executive",
    "Regional Director", "Sales Associate",
]

DEPARTMENTS: list[tuple[str, str]] = [
    ("North American Sales", "Sales and Marketing"),
    ("European Sales", "Sales and Marketing"),
    ("Pacific Sales", "Sales and Marketing"),
    ("Marketing", "Sales and Marketing"),
    ("Customer Service", "Sales and Marketing"),
]
