"""Synthetic datasets: AdventureWorks-like warehouses, the EBiz running
example, and the Table 3 query workload.

Public surface::

    from repro.datasets import (
        build_aw_online, build_aw_reseller, build_ebiz,
        AW_ONLINE_QUERIES, AW_RESELLER_QUERIES,
        BenchmarkQuery, Spec, is_relevant, relevant_rank,
        REVENUE,
    )
"""

from .adventureworks import REVENUE, build_aw_online, build_aw_reseller
from .ebiz import build_ebiz
from .scale import build_scale
from .trends import build_trends
from .queries import (
    AW_ONLINE_QUERIES,
    AW_RESELLER_QUERIES,
    BenchmarkQuery,
    Spec,
    is_relevant,
    relevant_rank,
)

__all__ = [
    "AW_ONLINE_QUERIES",
    "AW_RESELLER_QUERIES",
    "BenchmarkQuery",
    "REVENUE",
    "Spec",
    "build_aw_online",
    "build_aw_reseller",
    "build_ebiz",
    "build_scale",
    "build_trends",
    "is_relevant",
    "relevant_rank",
]
