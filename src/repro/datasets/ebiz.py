"""The EBiz e-commerce warehouse — the paper's Figure 2 running example.

Four conceptual dimensions over a transaction fact:

* **Time** — TIMEDAY → TIMEMONTH (Month → Quarter → Year hierarchy), plus
  HOLIDAY events ("Columbus Day" lives here);
* **Store** — STORE → LOCATION;
* **Customer** — CUSTOMER ← ACCOUNT → LOCATION, where ACCOUNT joins the
  transaction header on *both* BuyerKey and SellerKey (the same customer
  can be seller and buyer) — the paper's canonical parallel-edge case;
* **Product** — PRODUCT with two hierarchies: the UNSPSC family/segment
  hierarchy and the Product Group / Product Line hierarchy.

The fact side is a header/detail pair: TRANS (transaction) above TRANSITEM
(line items); TRANSITEM is the fact table and TRANS is fact-complex.
LOCATION is shared between the Store and Customer dimensions, giving the
keyword "Columbus" its three join paths to the fact table (store city,
buyer city, seller city) on top of the "Columbus Day" holiday reading —
exactly the ambiguity Example 3.1 of the paper walks through.
"""

from __future__ import annotations

import datetime as _dt

from ..relational.catalog import Database
from ..relational.expressions import Arith, Col
from ..relational.table import Table
from ..relational.types import date, float_, integer, text
from ..warehouse.graph import path_from_fk_names
from ..warehouse.schema import (
    AttributeKind,
    AttributeRef,
    Dimension,
    GroupByAttribute,
    Hierarchy,
    Measure,
    StarSchema,
)
from .rng import make_rng, zipf_weights

# (group name, line name)
PRODUCT_GROUPS: list[tuple[str, str]] = [
    ("LCD Projectors", "Projectors"),
    ("DLP Projectors", "Projectors"),
    ("Flat Panel(LCD)", "Monitors"),
    ("CRT Monitors", "Monitors"),
    ("LCD TVs", "Televisions"),
    ("Plasma TVs", "Televisions"),
    ("CRT TVs", "Televisions"),
    ("VCR", "Video"),
    ("DVD Players", "Video"),
    ("Home Theater", "Audio"),
    ("MP3 Players", "Audio"),
    ("Laptops", "Computers"),
    ("Desktops", "Computers"),
    ("Digital Cameras", "Cameras"),
]

# (family title, segment title)
UNSPSC_FAMILIES: list[tuple[str, str]] = [
    ("Home Electronics", "Electronics"),
    ("Office Electronics", "Electronics"),
    ("Computer Equipment", "Information Technology"),
    ("Imaging Equipment", "Information Technology"),
]

# (product name, group, unspsc family, msrp)
EBIZ_PRODUCTS: list[tuple[str, str, str, float]] = [
    ("UltraBright LCD Projector X200", "LCD Projectors",
     "Office Electronics", 899.0),
    ("PocketBeam LCD Projector Mini", "LCD Projectors",
     "Office Electronics", 499.0),
    ("CineMax DLP Projector", "DLP Projectors", "Office Electronics",
     1099.0),
    ("ViewCrisp 19in Flat Panel(LCD) Monitor", "Flat Panel(LCD)",
     "Computer Equipment", 329.0),
    ("ViewCrisp 24in Flat Panel(LCD) Monitor", "Flat Panel(LCD)",
     "Computer Equipment", 479.0),
    ("TubeView 17in CRT Monitor", "CRT Monitors", "Computer Equipment",
     149.0),
    ("CrystalVision 32in LCD TV", "LCD TVs", "Home Electronics", 1299.0),
    ("CrystalVision 40in LCD TV", "LCD TVs", "Home Electronics", 1999.0),
    ("PlasmaMax 42in Plasma TV", "Plasma TVs", "Home Electronics", 2399.0),
    ("RetroTube 27in CRT TV", "CRT TVs", "Home Electronics", 299.0),
    ("RecordPlus VCR Deluxe", "VCR", "Home Electronics", 89.0),
    ("DiscSpin DVD Player", "DVD Players", "Home Electronics", 79.0),
    ("SurroundPro Home Theater System", "Home Theater",
     "Home Electronics", 649.0),
    ("TuneGo MP3 Player 4GB", "MP3 Players", "Home Electronics", 129.0),
    ("WorkBook 14in Laptop", "Laptops", "Computer Equipment", 1199.0),
    ("PowerTower Desktop PC", "Desktops", "Computer Equipment", 899.0),
    ("SnapShot Digital Camera Z5", "Digital Cameras", "Imaging Equipment",
     349.0),
]

EBIZ_LOCATIONS: list[tuple[str, str, str]] = [
    ("Columbus", "Ohio", "United States"),
    ("Seattle", "Washington", "United States"),
    ("San Jose", "California", "United States"),
    ("San Francisco", "California", "United States"),
    ("Portland", "Oregon", "United States"),
    ("Denver", "Colorado", "United States"),
    ("Austin", "Texas", "United States"),
    ("New York", "New York", "United States"),
    ("Toronto", "Ontario", "Canada"),
    ("Vancouver", "British Columbia", "Canada"),
]

HOLIDAYS: list[tuple[str, int, int]] = [
    # (event, month, day) — observed every generated year
    ("New Year's Day", 1, 1),
    ("Independence Day", 7, 4),
    ("Columbus Day", 10, 12),
    ("Thanksgiving", 11, 25),
    ("Christmas", 12, 25),
]

STORE_NAMES: list[str] = [
    "EBiz Downtown", "EBiz Mall", "EBiz Outlet", "EBiz Plaza",
    "EBiz Center", "EBiz Express",
]

CUSTOMER_NAMES: list[str] = [
    "Alice Columbus", "Bob Rivera", "Carol Nguyen", "David Kim",
    "Erin O'Neill", "Frank Castle", "Grace Park", "Henry Ford",
    "Irene Adler", "Jack Sparrow", "Karen Page", "Louis Cole",
    "Maria Silva", "Nina Patel", "Oscar Diaz", "Paula Chen",
]


def build_ebiz(num_customers: int = 120, num_stores: int = 12,
               num_trans: int = 4000, max_items_per_trans: int = 4,
               seed: int = 7) -> StarSchema:
    """Build the EBiz warehouse with synthetic transactions."""
    rng = make_rng(seed)
    db = Database("EBiz")

    # Time ---------------------------------------------------------------
    months = db.add_table(Table("TIMEMONTH", [
        integer("MonthKey", nullable=False),
        text("MonthName"),
        text("Quarter"),
        integer("Year"),
        text("YearName"),
    ], primary_key="MonthKey"))
    month_names = ["January", "February", "March", "April", "May", "June",
                   "July", "August", "September", "October", "November",
                   "December"]
    for year in (2005, 2006):
        for month in range(1, 13):
            months.insert({
                "MonthKey": year * 100 + month,
                "MonthName": month_names[month - 1],
                "Quarter": f"Q{(month - 1) // 3 + 1}",
                "Year": year,
                "YearName": str(year),
            })

    holidays = db.add_table(Table("HOLIDAY", [
        integer("HolidayKey", nullable=False),
        text("Event"),
    ], primary_key="HolidayKey"))
    for key, (event, _m, _d) in enumerate(HOLIDAYS, start=1):
        holidays.insert({"HolidayKey": key, "Event": event})
    holiday_by_date = {(m, d): key for key, (_e, m, d) in
                       enumerate(HOLIDAYS, start=1)}

    days = db.add_table(Table("TIMEDAY", [
        integer("DateKey", nullable=False),
        date("FullDate"),
        text("WeekName"),
        integer("MonthKey"),
        integer("HolidayKey"),
    ], primary_key="DateKey"))
    day = _dt.date(2005, 1, 1)
    while day <= _dt.date(2006, 12, 31):
        days.insert({
            "DateKey": day.year * 10000 + day.month * 100 + day.day,
            "FullDate": day,
            "WeekName": f"{day.year}-W{day.isocalendar().week:02d}",
            "MonthKey": day.year * 100 + day.month,
            "HolidayKey": holiday_by_date.get((day.month, day.day)),
        })
        day += _dt.timedelta(days=1)

    # Location / Store / Customer / Account ------------------------------
    locations = db.add_table(Table("LOCATION", [
        integer("LocationKey", nullable=False),
        text("City"),
        text("State"),
        text("Country"),
    ], primary_key="LocationKey"))
    for key, (city, state, country) in enumerate(EBIZ_LOCATIONS, start=1):
        locations.insert({"LocationKey": key, "City": city, "State": state,
                          "Country": country})

    stores = db.add_table(Table("STORE", [
        integer("StoreKey", nullable=False),
        text("StoreName"),
        integer("LocationKey"),
    ], primary_key="StoreKey"))
    for key in range(1, num_stores + 1):
        base = STORE_NAMES[(key - 1) % len(STORE_NAMES)]
        loc = rng.randrange(1, len(EBIZ_LOCATIONS) + 1)
        city = EBIZ_LOCATIONS[loc - 1][0]
        stores.insert({"StoreKey": key, "StoreName": f"{base} {city}",
                       "LocationKey": loc})

    customers = db.add_table(Table("CUSTOMER", [
        integer("CustomerKey", nullable=False),
        text("CustomerName"),
        integer("Age"),
        float_("Income"),
    ], primary_key="CustomerKey"))
    accounts = db.add_table(Table("ACCOUNT", [
        integer("AccountKey", nullable=False),
        integer("CustomerKey"),
        integer("LocationKey"),
    ], primary_key="AccountKey"))
    for key in range(1, num_customers + 1):
        name = CUSTOMER_NAMES[(key - 1) % len(CUSTOMER_NAMES)]
        if key > len(CUSTOMER_NAMES):
            name = f"{name} {key}"
        customers.insert({
            "CustomerKey": key, "CustomerName": name,
            "Age": rng.randrange(18, 75),
            "Income": round(rng.uniform(20000, 160000), -3),
        })
        accounts.insert({
            "AccountKey": key, "CustomerKey": key,
            "LocationKey": rng.randrange(1, len(EBIZ_LOCATIONS) + 1),
        })

    # Product -------------------------------------------------------------
    pgroups = db.add_table(Table("PGROUP", [
        integer("PGroupKey", nullable=False),
        text("GroupName"),
        text("LineName"),
    ], primary_key="PGroupKey"))
    group_keys = {}
    for key, (group, line) in enumerate(PRODUCT_GROUPS, start=1):
        pgroups.insert({"PGroupKey": key, "GroupName": group,
                        "LineName": line})
        group_keys[group] = key

    unspsc = db.add_table(Table("UNSPSC", [
        integer("UnspscKey", nullable=False),
        text("FamilyTitle"),
        text("SegmentTitle"),
    ], primary_key="UnspscKey"))
    family_keys = {}
    for key, (family, segment) in enumerate(UNSPSC_FAMILIES, start=1):
        unspsc.insert({"UnspscKey": key, "FamilyTitle": family,
                       "SegmentTitle": segment})
        family_keys[family] = key

    products = db.add_table(Table("PRODUCT", [
        integer("ProductKey", nullable=False),
        text("ProductName"),
        float_("Msrp"),
        integer("PGroupKey"),
        integer("UnspscKey"),
    ], primary_key="ProductKey"))
    for key, (name, group, family, msrp) in enumerate(EBIZ_PRODUCTS,
                                                      start=1):
        products.insert({
            "ProductKey": key, "ProductName": name, "Msrp": msrp,
            "PGroupKey": group_keys[group],
            "UnspscKey": family_keys[family],
        })

    # fact side: TRANS header + TRANSITEM detail --------------------------
    trans = db.add_table(Table("TRANS", [
        integer("TransKey", nullable=False),
        integer("DateKey"),
        integer("StoreKey"),
        integer("BuyerKey"),
        integer("SellerKey"),
    ], primary_key="TransKey"))
    items = db.add_table(Table("TRANSITEM", [
        integer("ItemKey", nullable=False),
        integer("TransKey"),
        integer("ProductKey"),
        float_("UnitPrice"),
        integer("Quantity"),
    ], primary_key="ItemKey"))

    db.add_foreign_key("fk_day_month", "TIMEDAY", "MonthKey", "TIMEMONTH",
                       "MonthKey")
    db.add_foreign_key("fk_day_holiday", "TIMEDAY", "HolidayKey", "HOLIDAY",
                       "HolidayKey")
    db.add_foreign_key("fk_store_loc", "STORE", "LocationKey", "LOCATION",
                       "LocationKey")
    db.add_foreign_key("fk_account_customer", "ACCOUNT", "CustomerKey",
                       "CUSTOMER", "CustomerKey")
    db.add_foreign_key("fk_account_loc", "ACCOUNT", "LocationKey",
                       "LOCATION", "LocationKey")
    db.add_foreign_key("fk_product_group", "PRODUCT", "PGroupKey", "PGROUP",
                       "PGroupKey")
    db.add_foreign_key("fk_product_unspsc", "PRODUCT", "UnspscKey",
                       "UNSPSC", "UnspscKey")
    db.add_foreign_key("fk_trans_date", "TRANS", "DateKey", "TIMEDAY",
                       "DateKey")
    db.add_foreign_key("fk_trans_store", "TRANS", "StoreKey", "STORE",
                       "StoreKey")
    db.add_foreign_key("fk_trans_buyer", "TRANS", "BuyerKey", "ACCOUNT",
                       "AccountKey")
    db.add_foreign_key("fk_trans_seller", "TRANS", "SellerKey", "ACCOUNT",
                       "AccountKey")
    db.add_foreign_key("fk_item_trans", "TRANSITEM", "TransKey", "TRANS",
                       "TransKey")
    db.add_foreign_key("fk_item_product", "TRANSITEM", "ProductKey",
                       "PRODUCT", "ProductKey")

    # transactions ---------------------------------------------------------
    date_keys = days.column_values("DateKey")
    product_weights = zipf_weights(len(EBIZ_PRODUCTS), skew=0.4)
    product_indices = list(range(len(EBIZ_PRODUCTS)))
    item_key = 0
    for trans_key in range(1, num_trans + 1):
        buyer = rng.randrange(1, num_customers + 1)
        seller = rng.randrange(1, num_customers + 1)
        trans.insert({
            "TransKey": trans_key,
            "DateKey": rng.choice(date_keys),
            "StoreKey": rng.randrange(1, num_stores + 1),
            "BuyerKey": buyer,
            "SellerKey": seller,
        })
        for _ in range(rng.randrange(1, max_items_per_trans + 1)):
            item_key += 1
            p_idx = rng.choices(product_indices,
                                weights=product_weights)[0]
            _name, _group, _family, msrp = EBIZ_PRODUCTS[p_idx]
            items.insert({
                "ItemKey": item_key,
                "TransKey": trans_key,
                "ProductKey": p_idx + 1,
                "UnitPrice": round(msrp * rng.uniform(0.85, 1.0), 2),
                "Quantity": rng.choices([1, 2, 3], weights=[8, 3, 1])[0],
            })

    return _ebiz_schema(db)


def _ebiz_schema(db: Database) -> StarSchema:
    fact = "TRANSITEM"

    def gb(table: str, column: str, kind: AttributeKind,
           fk_chain: list[str]) -> GroupByAttribute:
        return GroupByAttribute(
            AttributeRef(table, column), kind,
            path_from_fk_names(db, fact, fk_chain),
        )

    time_dim = Dimension(
        name="Time",
        tables=("TIMEDAY", "TIMEMONTH", "HOLIDAY"),
        hierarchies=(
            Hierarchy("Calendar", (
                AttributeRef("TIMEMONTH", "MonthName"),
                AttributeRef("TIMEMONTH", "Quarter"),
            )),
        ),
        groupbys=(
            gb("TIMEMONTH", "MonthName", AttributeKind.CATEGORICAL,
               ["fk_item_trans", "fk_trans_date", "fk_day_month"]),
            gb("TIMEMONTH", "Quarter", AttributeKind.CATEGORICAL,
               ["fk_item_trans", "fk_trans_date", "fk_day_month"]),
            gb("TIMEMONTH", "YearName", AttributeKind.CATEGORICAL,
               ["fk_item_trans", "fk_trans_date", "fk_day_month"]),
        ),
    )
    store_dim = Dimension(
        name="Store",
        tables=("STORE", "LOCATION"),
        hierarchies=(
            Hierarchy("StoreGeography", (
                AttributeRef("LOCATION", "City"),
                AttributeRef("LOCATION", "State"),
                AttributeRef("LOCATION", "Country"),
            )),
        ),
        groupbys=(
            gb("STORE", "StoreName", AttributeKind.CATEGORICAL,
               ["fk_item_trans", "fk_trans_store"]),
            gb("LOCATION", "City", AttributeKind.CATEGORICAL,
               ["fk_item_trans", "fk_trans_store", "fk_store_loc"]),
            gb("LOCATION", "State", AttributeKind.CATEGORICAL,
               ["fk_item_trans", "fk_trans_store", "fk_store_loc"]),
        ),
    )
    customer_dim = Dimension(
        name="Customer",
        tables=("CUSTOMER", "ACCOUNT", "LOCATION"),
        hierarchies=(
            Hierarchy("CustomerGeography", (
                AttributeRef("LOCATION", "City"),
                AttributeRef("LOCATION", "State"),
                AttributeRef("LOCATION", "Country"),
            )),
        ),
        groupbys=(
            gb("CUSTOMER", "Age", AttributeKind.NUMERICAL,
               ["fk_item_trans", "fk_trans_buyer", "fk_account_customer"]),
            gb("CUSTOMER", "Income", AttributeKind.NUMERICAL,
               ["fk_item_trans", "fk_trans_buyer", "fk_account_customer"]),
        ),
    )
    product_dim = Dimension(
        name="Product",
        tables=("PRODUCT", "PGROUP", "UNSPSC"),
        hierarchies=(
            Hierarchy("ProductLine", (
                AttributeRef("PGROUP", "GroupName"),
                AttributeRef("PGROUP", "LineName"),
            )),
            Hierarchy("Unspsc", (
                AttributeRef("UNSPSC", "FamilyTitle"),
                AttributeRef("UNSPSC", "SegmentTitle"),
            )),
        ),
        groupbys=(
            gb("PGROUP", "GroupName", AttributeKind.CATEGORICAL,
               ["fk_item_product", "fk_product_group"]),
            gb("PGROUP", "LineName", AttributeKind.CATEGORICAL,
               ["fk_item_product", "fk_product_group"]),
            gb("UNSPSC", "FamilyTitle", AttributeKind.CATEGORICAL,
               ["fk_item_product", "fk_product_unspsc"]),
            gb("PRODUCT", "Msrp", AttributeKind.NUMERICAL,
               ["fk_item_product"]),
        ),
    )

    searchable = {
        "TIMEMONTH": ["MonthName", "Quarter", "YearName"],
        "HOLIDAY": ["Event"],
        "LOCATION": ["City", "State", "Country"],
        "STORE": ["StoreName"],
        "CUSTOMER": ["CustomerName"],
        "PGROUP": ["GroupName", "LineName"],
        "UNSPSC": ["FamilyTitle", "SegmentTitle"],
        "PRODUCT": ["ProductName"],
    }

    return StarSchema(
        database=db,
        fact_table=fact,
        dimensions=[time_dim, store_dim, customer_dim, product_dim],
        measures=[Measure("revenue",
                          Arith("*", Col("UnitPrice"), Col("Quantity")),
                          "sum")],
        searchable=searchable,
        fact_complex=("TRANS",),
    )
