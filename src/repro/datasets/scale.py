"""Seeded scale generator: a small star schema with a huge fact table.

The AdventureWorks builders model realistic *content* (names, promotions,
injected surprises) at tens of thousands of rows.  Benchmarking the
columnar chunk store and morsel-driven parallelism needs the opposite
trade-off: a deliberately minimal dimension layout inflated to a million
or more fact rows, generated in a couple of seconds, with value
distributions that exercise every encoding:

* ``DateKey`` is drawn with seasonal weights and then **sorted**, so the
  fact table is clustered on date — long runs for RLE encoding and
  tight, disjoint zone maps that a selective date range can skip.
* ``ProductKey`` is a skewed (zipf) draw over a small catalogue — low
  cardinality, dictionary-encodable, but unordered.
* ``UnitPrice`` is the product's list price, so it shares the product
  column's low cardinality; ``Quantity`` is a small skewed integer.

Everything is driven by one :func:`~repro.datasets.rng.make_rng` seed and
bulk-loaded through :meth:`~repro.relational.table.Table.load_columns`,
so two builds with the same arguments are identical bit for bit.
"""

from __future__ import annotations

import datetime as _dt

from ..relational.catalog import Database
from ..relational.table import Table
from ..relational.types import float_, integer, text
from ..warehouse.graph import path_from_fk_names
from ..warehouse.schema import (
    AttributeKind,
    AttributeRef,
    Dimension,
    GroupByAttribute,
    Hierarchy,
    StarSchema,
)
from .adventureworks import REVENUE
from .rng import make_rng, zipf_weights

_COLORS = ("Black", "Silver", "Red", "Blue", "Yellow", "White")
_CATEGORIES = ("Bikes", "Components", "Clothing", "Accessories")
_MONTHS = ("January", "February", "March", "April", "May", "June",
           "July", "August", "September", "October", "November",
           "December")


def build_scale(num_facts: int = 1_000_000, seed: int = 7,
                num_products: int = 24, num_days: int = 730,
                start: _dt.date = _dt.date(2003, 1, 1)) -> StarSchema:
    """A two-dimension star with ``num_facts`` clustered fact rows."""
    rng = make_rng(seed)
    db = Database("scale")

    # DimProduct: a small catalogue with low-cardinality attributes ----
    products = db.add_table(Table("DimProduct", [
        integer("ProductKey", nullable=False),
        text("ProductName"),
        text("Color"),
        text("CategoryName"),
        float_("ListPrice"),
    ], primary_key="ProductKey"))
    prices: list[float] = []
    for key in range(1, num_products + 1):
        price = round(rng.uniform(5.0, 60.0), 2) * rng.choice((1, 1, 10))
        prices.append(round(price, 2))
        products.insert({
            "ProductKey": key,
            "ProductName": f"Scale Product {key:03d}",
            "Color": _COLORS[(key * 7) % len(_COLORS)],
            "CategoryName": _CATEGORIES[key % len(_CATEGORIES)],
            "ListPrice": prices[-1],
        })

    # DimDate: consecutive days so DateKey ranges map onto time spans --
    dates = db.add_table(Table("DimDate", [
        integer("DateKey", nullable=False),
        text("MonthName"),
        text("CalendarYearName"),
    ], primary_key="DateKey"))
    date_keys: list[int] = []
    day_weights: list[float] = []
    for offset in range(num_days):
        day = start + _dt.timedelta(days=offset)
        key = day.year * 10000 + day.month * 100 + day.day
        date_keys.append(key)
        # mild seasonality: summer and December sell more
        day_weights.append(1.0 + 0.5 * (day.month in (6, 7, 8))
                           + 0.8 * (day.month == 12))
        dates.insert({
            "DateKey": key,
            "MonthName": _MONTHS[day.month - 1],
            "CalendarYearName": f"CY {day.year}",
        })

    # FactScaleSales: bulk column load, clustered on DateKey -----------
    fact = db.add_table(Table("FactScaleSales", [
        integer("OrderKey", nullable=False),
        integer("ProductKey"),
        integer("DateKey"),
        float_("UnitPrice"),
        integer("Quantity"),
    ]))
    db.add_foreign_key("fk_scale_product", "FactScaleSales", "ProductKey",
                       "DimProduct", "ProductKey")
    db.add_foreign_key("fk_scale_date", "FactScaleSales", "DateKey",
                       "DimDate", "DateKey")

    product_keys = rng.choices(range(1, num_products + 1),
                               weights=zipf_weights(num_products, 1.1),
                               k=num_facts)
    fact_dates = sorted(rng.choices(date_keys, weights=day_weights,
                                    k=num_facts))
    fact.load_columns({
        "OrderKey": range(1, num_facts + 1),
        "ProductKey": product_keys,
        "DateKey": fact_dates,
        "UnitPrice": [prices[key - 1] for key in product_keys],
        "Quantity": rng.choices((1, 2, 3, 4), weights=(8, 4, 2, 1),
                                k=num_facts),
    })

    return _scale_schema(db)


def load_scale(path: str) -> StarSchema:
    """Rehydrate a scale warehouse dumped by ``repro warehouse generate``
    (the sqlite file written via
    :func:`~repro.relational.persistence.dump_database`)."""
    from ..relational.persistence import load_database

    return _scale_schema(load_database(path))


def _scale_schema(db: Database) -> StarSchema:
    fact = "FactScaleSales"

    def gb(table: str, column: str, kind: AttributeKind,
           fk_chain: list[str]) -> GroupByAttribute:
        return GroupByAttribute(
            AttributeRef(table, column), kind,
            path_from_fk_names(db, fact, fk_chain),
        )

    product = Dimension(
        name="Product",
        tables=("DimProduct",),
        hierarchies=(
            Hierarchy("ProductCategory", (
                AttributeRef("DimProduct", "ProductName"),
                AttributeRef("DimProduct", "CategoryName"),
            )),
        ),
        groupbys=(
            gb("DimProduct", "ProductName", AttributeKind.CATEGORICAL,
               ["fk_scale_product"]),
            gb("DimProduct", "Color", AttributeKind.CATEGORICAL,
               ["fk_scale_product"]),
            gb("DimProduct", "CategoryName", AttributeKind.CATEGORICAL,
               ["fk_scale_product"]),
            gb("DimProduct", "ListPrice", AttributeKind.NUMERICAL,
               ["fk_scale_product"]),
        ),
    )
    dates = Dimension(
        name="Date",
        tables=("DimDate",),
        hierarchies=(
            Hierarchy("Calendar", (
                AttributeRef("DimDate", "MonthName"),
                AttributeRef("DimDate", "CalendarYearName"),
            )),
        ),
        groupbys=(
            gb("DimDate", "MonthName", AttributeKind.CATEGORICAL,
               ["fk_scale_date"]),
            gb("DimDate", "CalendarYearName", AttributeKind.CATEGORICAL,
               ["fk_scale_date"]),
        ),
    )
    searchable = {
        "DimProduct": ["ProductName", "Color", "CategoryName"],
        "DimDate": ["MonthName", "CalendarYearName"],
    }
    return StarSchema(db, fact, (product, dates), (REVENUE,), searchable,
                      synonyms=SCALE_SYNONYMS)


#: Business-term seed for the metadata matcher ("revenue by month top 3"
#: resolves without any cell-value hit).  Dump/extend via
#: ``repro warehouse generate --synonyms out.json``.
SCALE_SYNONYMS: dict[str, tuple[str, ...]] = {
    "product": ("DimProduct.ProductName",),
    "item": ("DimProduct.ProductName",),
    "category": ("DimProduct.CategoryName",),
    "color": ("DimProduct.Color",),
    "price": ("DimProduct.ListPrice",),
    "month": ("DimDate.MonthName",),
    "year": ("DimDate.CalendarYearName",),
    "revenue": ("measure:revenue",),
    "sales": ("measure:revenue",),
    "turnover": ("measure:revenue",),
}
