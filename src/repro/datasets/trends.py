"""A Google-Trends-style query-log warehouse.

The paper's related work (§2) singles out Google Trends as "the only
system that provides some rudimentary KDAP functionality to end users":
a faceted view of aggregated search-query volume over time and location.
This builder synthesises exactly that data model — a query-log fact with
search-term, region, and time dimensions — to demonstrate that the KDAP
framework generalises beyond retail warehouses.

Structure is injected so the two OLAP applications have something to
find: term volumes carry seasonality (e.g. "olympics" spikes in August
of even years) and regional affinities (e.g. "cricket world cup" skews
to Commonwealth regions).
"""

from __future__ import annotations

import datetime as _dt

from ..relational.catalog import Database
from ..relational.expressions import Col
from ..relational.table import Table
from ..relational.types import date, integer, text
from ..warehouse.graph import path_from_fk_names
from ..warehouse.schema import (
    AttributeKind,
    AttributeRef,
    Dimension,
    GroupByAttribute,
    Hierarchy,
    Measure,
    StarSchema,
)
from .rng import make_rng, zipf_weights

# (term, topic, seasonal month peaks, region-affinity country set)
SEARCH_TERMS: list[tuple[str, str, tuple[int, ...], frozenset[str]]] = [
    ("ipod nano", "Consumer Electronics", (11, 12), frozenset()),
    ("lcd television", "Consumer Electronics", (11, 12), frozenset()),
    ("digital camera", "Consumer Electronics", (6, 7, 12), frozenset()),
    ("laptop deals", "Consumer Electronics", (8, 11), frozenset()),
    ("olympics schedule", "Sports", (8,), frozenset()),
    ("world cup", "Sports", (6, 7), frozenset()),
    ("cricket world cup", "Sports", (3, 4),
     frozenset({"Australia", "United Kingdom"})),
    ("super bowl", "Sports", (1, 2), frozenset({"United States"})),
    ("tax filing", "Finance", (3, 4), frozenset({"United States"})),
    ("mortgage rates", "Finance", (), frozenset()),
    ("stock market", "Finance", (), frozenset()),
    ("flu symptoms", "Health", (1, 2, 12), frozenset()),
    ("allergy season", "Health", (4, 5), frozenset()),
    ("sunscreen", "Health", (6, 7, 8), frozenset({"Australia"})),
    ("ski resorts", "Travel", (1, 2, 12), frozenset()),
    ("beach vacation", "Travel", (6, 7), frozenset()),
    ("flight tickets", "Travel", (5, 6, 7), frozenset()),
    ("halloween costumes", "Shopping", (10,),
     frozenset({"United States", "Canada"})),
    ("christmas gifts", "Shopping", (11, 12), frozenset()),
    ("back to school", "Shopping", (8, 9), frozenset()),
]

TREND_REGIONS: list[tuple[str, str]] = [
    ("Seattle", "United States"),
    ("San Francisco", "United States"),
    ("New York", "United States"),
    ("Chicago", "United States"),
    ("Toronto", "Canada"),
    ("Vancouver", "Canada"),
    ("London", "United Kingdom"),
    ("Manchester", "United Kingdom"),
    ("Sydney", "Australia"),
    ("Melbourne", "Australia"),
    ("Berlin", "Germany"),
    ("Paris", "France"),
]


def build_trends(num_facts: int = 30000, seed: int = 11,
                 start_year: int = 2004, end_year: int = 2006) -> StarSchema:
    """Build the query-log warehouse."""
    rng = make_rng(seed)
    db = Database("TRENDS")

    terms = db.add_table(Table("DimSearchTerm", [
        integer("TermKey", nullable=False),
        text("TermText"),
        text("Topic"),
    ], primary_key="TermKey"))
    for key, (term, topic, _peaks, _aff) in enumerate(SEARCH_TERMS,
                                                      start=1):
        terms.insert({"TermKey": key, "TermText": term, "Topic": topic})

    regions = db.add_table(Table("DimRegion", [
        integer("RegionKey", nullable=False),
        text("City"),
        text("Country"),
    ], primary_key="RegionKey"))
    for key, (city, country) in enumerate(TREND_REGIONS, start=1):
        regions.insert({"RegionKey": key, "City": city,
                        "Country": country})

    months = ["January", "February", "March", "April", "May", "June",
              "July", "August", "September", "October", "November",
              "December"]
    dates = db.add_table(Table("DimDate", [
        integer("DateKey", nullable=False),
        date("FullDate"),
        text("MonthName"),
        text("CalendarQuarter"),
        integer("CalendarYear"),
        text("CalendarYearName"),
    ], primary_key="DateKey"))
    day = _dt.date(start_year, 1, 1)
    while day <= _dt.date(end_year, 12, 31):
        dates.insert({
            "DateKey": day.year * 10000 + day.month * 100 + day.day,
            "FullDate": day,
            "MonthName": months[day.month - 1],
            "CalendarQuarter": f"Q{(day.month - 1) // 3 + 1}",
            "CalendarYear": day.year,
            "CalendarYearName": str(day.year),
        })
        day += _dt.timedelta(days=1)

    fact = db.add_table(Table("FactQueryVolume", [
        integer("EntryKey", nullable=False),
        integer("TermKey"),
        integer("RegionKey"),
        integer("DateKey"),
        integer("Volume"),
    ], primary_key="EntryKey"))

    db.add_foreign_key("fk_fact_term", "FactQueryVolume", "TermKey",
                       "DimSearchTerm", "TermKey")
    db.add_foreign_key("fk_fact_region", "FactQueryVolume", "RegionKey",
                       "DimRegion", "RegionKey")
    db.add_foreign_key("fk_fact_date", "FactQueryVolume", "DateKey",
                       "DimDate", "DateKey")

    date_keys = dates.column_values("DateKey")
    term_weights = zipf_weights(len(SEARCH_TERMS), skew=0.5)
    term_indices = list(range(len(SEARCH_TERMS)))
    region_weights = zipf_weights(len(TREND_REGIONS), skew=0.4)
    region_indices = list(range(len(TREND_REGIONS)))
    for entry in range(1, num_facts + 1):
        t_idx = rng.choices(term_indices, weights=term_weights)[0]
        r_idx = rng.choices(region_indices, weights=region_weights)[0]
        date_key = rng.choice(date_keys)
        month = (date_key // 100) % 100
        _term, _topic, peaks, affinity = SEARCH_TERMS[t_idx]
        volume = rng.randrange(5, 120)
        if month in peaks:
            volume = int(volume * rng.uniform(2.5, 4.0))
        country = TREND_REGIONS[r_idx][1]
        if affinity and country in affinity:
            volume = int(volume * rng.uniform(1.8, 2.6))
        fact.insert({
            "EntryKey": entry, "TermKey": t_idx + 1,
            "RegionKey": r_idx + 1, "DateKey": date_key,
            "Volume": volume,
        })

    return _trends_schema(db)


def _trends_schema(db: Database) -> StarSchema:
    fact = "FactQueryVolume"

    def gb(table: str, column: str, kind: AttributeKind,
           fk_chain: list[str]) -> GroupByAttribute:
        return GroupByAttribute(
            AttributeRef(table, column), kind,
            path_from_fk_names(db, fact, fk_chain),
        )

    term_dim = Dimension(
        name="SearchTerm",
        tables=("DimSearchTerm",),
        hierarchies=(
            Hierarchy("Topic", (
                AttributeRef("DimSearchTerm", "TermText"),
                AttributeRef("DimSearchTerm", "Topic"),
            )),
        ),
        groupbys=(
            gb("DimSearchTerm", "TermText", AttributeKind.CATEGORICAL,
               ["fk_fact_term"]),
            gb("DimSearchTerm", "Topic", AttributeKind.CATEGORICAL,
               ["fk_fact_term"]),
        ),
    )
    region_dim = Dimension(
        name="Region",
        tables=("DimRegion",),
        hierarchies=(
            Hierarchy("Geography", (
                AttributeRef("DimRegion", "City"),
                AttributeRef("DimRegion", "Country"),
            )),
        ),
        groupbys=(
            gb("DimRegion", "City", AttributeKind.CATEGORICAL,
               ["fk_fact_region"]),
            gb("DimRegion", "Country", AttributeKind.CATEGORICAL,
               ["fk_fact_region"]),
        ),
    )
    time_dim = Dimension(
        name="Time",
        tables=("DimDate",),
        hierarchies=(
            Hierarchy("Calendar", (
                AttributeRef("DimDate", "MonthName"),
                AttributeRef("DimDate", "CalendarQuarter"),
            )),
        ),
        groupbys=(
            gb("DimDate", "MonthName", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
            gb("DimDate", "CalendarQuarter", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
            gb("DimDate", "CalendarYearName", AttributeKind.CATEGORICAL,
               ["fk_fact_date"]),
        ),
    )

    return StarSchema(
        database=db,
        fact_table=fact,
        dimensions=[term_dim, region_dim, time_dim],
        measures=[Measure("volume", Col("Volume"), "sum")],
        searchable={
            "DimSearchTerm": ["TermText", "Topic"],
            "DimRegion": ["City", "Country"],
            "DimDate": ["MonthName", "CalendarQuarter",
                        "CalendarYearName"],
        },
    )
