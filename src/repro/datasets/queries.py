"""The 50 keyword queries of Table 3, with machine-checkable ground truth.

The paper's authors judged star-net relevance manually; we instead attach
to each query the *intended interpretation(s)*: which attribute domains the
keywords were drawn from, optionally pinned to specific values and ray
dimensions.  A star net is relevant when its hit groups biject onto the
specs of one intended interpretation.  This turns Figure 4 into a fully
reproducible experiment.

A few queries are lightly adapted to this repo's analyzer, recorded inline:

* #3  "Sport100"  → "Sport-100"   (our tokenizer keeps "sport100" whole);
* #23 "HalfPrice" → "Half-Price"  (same reason);
* #41 "Allpurpose"→ "All-purpose" (same reason);
* #44's number is a customer phone (our schema has no reseller phone).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.starnet import StarNet


@dataclass(frozen=True)
class Spec:
    """One expected hit group: an attribute domain, optionally pinned to a
    value the group must contain and the dimension its ray must use."""

    table: str
    attribute: str
    value: str | None = None
    dimension: str | None = None


@dataclass(frozen=True)
class BenchmarkQuery:
    """One Table 3 query: text plus alternative intended interpretations."""

    qid: int
    text: str
    interpretations: tuple[tuple[Spec, ...], ...]
    note: str = ""


def _spec_matches(spec: Spec, star_net: StarNet, ray_index: int) -> bool:
    ray = star_net.rays[ray_index]
    group = ray.hit_group
    if (group.table, group.attribute) != (spec.table, spec.attribute):
        return False
    if spec.value is not None and spec.value not in group.values:
        return False
    if spec.dimension is not None and ray.dimension != spec.dimension:
        return False
    return True


def _bijection_exists(specs: tuple[Spec, ...], star_net: StarNet) -> bool:
    """Backtracking bijection between specs and star-net rays."""
    n = len(specs)
    if star_net.size != n:
        return False
    used = [False] * n

    def assign(i: int) -> bool:
        if i == n:
            return True
        for j in range(n):
            if not used[j] and _spec_matches(specs[i], star_net, j):
                used[j] = True
                if assign(i + 1):
                    return True
                used[j] = False
        return False

    return assign(0)


def is_relevant(star_net: StarNet, query: BenchmarkQuery) -> bool:
    """True when the star net realises one of the intended interpretations."""
    return any(
        _bijection_exists(specs, star_net)
        for specs in query.interpretations
    )


def relevant_rank(ranked_star_nets, query: BenchmarkQuery) -> int | None:
    """1-based rank of the first relevant star net, or None."""
    for rank, scored in enumerate(ranked_star_nets, start=1):
        if is_relevant(scored.star_net, query):
            return rank
    return None


# ----------------------------------------------------------------------
# spec shorthands
# ----------------------------------------------------------------------
def _city(value: str) -> Spec:
    return Spec("DimGeography", "City", value)


def _state(value: str) -> Spec:
    return Spec("DimGeography", "StateProvinceName", value)


def _country(value: str) -> Spec:
    return Spec("DimGeography", "CountryRegionName", value)


def _sub(value: str) -> Spec:
    return Spec("DimProductSubcategory", "ProductSubcategoryName", value)


def _cat(value: str) -> Spec:
    return Spec("DimProductCategory", "ProductCategoryName", value)


def _pname(value: str | None = None) -> Spec:
    return Spec("DimProduct", "EnglishProductName", value)


def _model(value: str | None = None) -> Spec:
    return Spec("DimProduct", "ModelName", value)


def _desc(value: str | None = None) -> Spec:
    return Spec("DimProduct", "EnglishDescription", value)


def _promo(value: str | None = None) -> Spec:
    return Spec("DimPromotion", "PromotionName", value)


def _month(value: str) -> Spec:
    return Spec("DimDate", "MonthName", value)


def _year(value: str) -> Spec:
    return Spec("DimDate", "CalendarYearName", value)


def _group(value: str) -> Spec:
    return Spec("DimSalesTerritory", "SalesTerritoryGroup", value)


AW_ONLINE_QUERIES: tuple[BenchmarkQuery, ...] = (
    BenchmarkQuery(1, "Overstock",
                   ((_promo("Road-650 Overstock"),),)),
    BenchmarkQuery(2, "Tire",
                   ((_sub("Tires and Tubes"),),)),
    BenchmarkQuery(3, "Sport-100",
                   ((_model("Sport-100"),), (_pname(),)),
                   note="adapted from 'Sport100'"),
    BenchmarkQuery(4, "October", ((_month("October"),),)),
    BenchmarkQuery(5, "fernando35@adventure-works.com",
                   ((Spec("DimCustomer", "EmailAddress",
                          "fernando35@adventure-works.com"),),)),
    BenchmarkQuery(6, "Bolts",
                   ((_model("Hex Bolt"),), (_pname("Hex Bolt 1"),))),
    BenchmarkQuery(7, "Europe", ((_group("Europe"),),)),
    BenchmarkQuery(8, "Australia",
                   ((_country("Australia"),),
                    (Spec("DimSalesTerritory", "SalesTerritoryCountry",
                          "Australia"),),
                    (Spec("DimSalesTerritory", "SalesTerritoryRegion",
                          "Australia"),))),
    BenchmarkQuery(9, "Bachelors",
                   ((Spec("DimCustomer", "Education", "Bachelors"),),)),
    BenchmarkQuery(10, "Blade",
                   ((_pname("Blade"),), (_model("Blade"),))),
    BenchmarkQuery(11, "Mountain Tire",
                   ((_pname("HL Mountain Tire"),),
                    (_model("HL Mountain Tire"),))),
    BenchmarkQuery(12, "Flat Washer",
                   ((_pname("Flat Washer 1"),), (_model("Flat Washer"),))),
    BenchmarkQuery(13, "Internal Lock",
                   ((_pname("Internal Lock Washer 1"),),
                    (_model("Internal Lock Washer"),))),
    BenchmarkQuery(14, "California US",
                   ((_state("California"),
                     Spec("DimGeography", "CountryRegionCode", "US")),)),
    BenchmarkQuery(15, "Brakes Chains",
                   ((_sub("Brakes"), _sub("Chains")),)),
    BenchmarkQuery(16, "Road Bikes", ((_sub("Road Bikes"),),)),
    BenchmarkQuery(17, "Blade California",
                   ((_pname("Blade"), _state("California")),
                    (_model("Blade"), _state("California")))),
    BenchmarkQuery(18, "Chainring Bikes",
                   ((_pname("Chainring"), _cat("Bikes")),
                    (_model("Chainring"), _cat("Bikes")))),
    BenchmarkQuery(19, "Keyed Washer",
                   ((_pname("Keyed Washer"),), (_model("Keyed Washer"),))),
    BenchmarkQuery(20, "Silver Hub",
                   ((_pname("Silver Hub"),), (_model("Silver Hub"),))),
    BenchmarkQuery(21, "2001 January US",
                   ((_year("2001"), _month("January"),
                     Spec("DimGeography", "CountryRegionCode", "US")),)),
    BenchmarkQuery(22, "Caps Gloves Jerseys",
                   ((_sub("Caps"), _sub("Gloves"), _sub("Jerseys")),)),
    BenchmarkQuery(23, "Half-Price Pedal Sale",
                   ((_promo("Half-Price Pedal Sale"),),),
                   note="adapted from 'HalfPrice Pedal Sale'"),
    BenchmarkQuery(24, "Sydney Helmet Discount",
                   ((_city("Sydney"), _promo("Sport Helmet Discount")),),
                   note="the paper's worst case: Sydney is also a first name"),
    BenchmarkQuery(25, "Sydney California Promotion",
                   ((_city("Sydney"), _state("California"),
                     _promo("Touring-3000 Promotion")),)),
    BenchmarkQuery(26, "Discount California December",
                   ((Spec("DimPromotion", "PromotionType"),
                     _state("California"), _month("December")),
                    (_promo(), _state("California"), _month("December")))),
    BenchmarkQuery(27, "Mountain Bike Socks",
                   ((_model("Mountain Bike Socks"),),
                    (_pname("Mountain Bike Socks, M"),))),
    BenchmarkQuery(28, "Cycling Cap Alexandria",
                   ((_pname("Cycling Cap"), _city("Alexandria")),
                    (_model("Cycling Cap"), _city("Alexandria")))),
    BenchmarkQuery(29, "HL Road Frame",
                   ((_pname("HL Road Frame - Black, 58"),),
                    (_model("HL Road Frame"),))),
    BenchmarkQuery(30, "Ithaca Accessories Clothing",
                   ((_city("Ithaca"), _cat("Accessories"),
                     _cat("Clothing")),)),
    BenchmarkQuery(31, "New South Wales Professional",
                   ((_state("New South Wales"),
                     Spec("DimCustomer", "Occupation", "Professional")),)),
    BenchmarkQuery(32, "San Jose Metal Plate",
                   ((_city("San Jose"), _pname("Metal Plate 2")),
                    (_city("San Jose"), _model("Metal Plate")))),
    BenchmarkQuery(33, "Washington Tires Tubes",
                   ((_state("Washington"), _sub("Tires and Tubes")),)),
    BenchmarkQuery(34, "Germany US Dollar 2000",
                   ((_country("Germany"),
                     Spec("DimCurrency", "CurrencyName", "US Dollar"),
                     _year("2000")),
                    (Spec("DimSalesTerritory", "SalesTerritoryCountry",
                          "Germany"),
                     Spec("DimCurrency", "CurrencyName", "US Dollar"),
                     _year("2000")),
                    (Spec("DimSalesTerritory", "SalesTerritoryRegion",
                          "Germany"),
                     Spec("DimCurrency", "CurrencyName", "US Dollar"),
                     _year("2000")))),
    BenchmarkQuery(35, "California Accessories 2001 September",
                   ((_state("California"), _cat("Accessories"),
                     _year("2001"), _month("September")),)),
    BenchmarkQuery(36, "Bikes Components Clothing Accessories",
                   ((_cat("Bikes"), _cat("Components"), _cat("Clothing"),
                     _cat("Accessories")),)),
    BenchmarkQuery(37, "Central Valley Torrance Denver",
                   ((_city("Central Valley"), _city("Torrance"),
                     _city("Denver")),)),
    BenchmarkQuery(38, "Black Yellow handcrafted bumps",
                   ((Spec("DimProduct", "Color", "Black"),
                     Spec("DimProduct", "Color", "Yellow"),
                     _desc()),)),
    BenchmarkQuery(39, "ML Fork North America",
                   ((_pname("ML Fork"), _group("North America")),
                    (_model("ML Fork"), _group("North America")))),
    BenchmarkQuery(40, "Central United States HeadSet",
                   ((Spec("DimSalesTerritory", "SalesTerritoryRegion",
                          "Central"),
                     Spec("DimSalesTerritory", "SalesTerritoryCountry",
                          "United States"),
                     _model()),
                    (Spec("DimSalesTerritory", "SalesTerritoryRegion",
                          "Central"),
                     _country("United States"), _model()),
                    (Spec("DimSalesTerritory", "SalesTerritoryRegion",
                          "Central"),
                     Spec("DimSalesTerritory", "SalesTerritoryCountry",
                          "United States"),
                     _pname()),
                    (Spec("DimSalesTerritory", "SalesTerritoryRegion",
                          "Central"),
                     _country("United States"), _pname()))),
    BenchmarkQuery(41, "All-purpose bar for on or off-road",
                   ((_desc(),),),
                   note="adapted from 'Allpurpose bar for on or off-road'"),
    BenchmarkQuery(42, "December November Mountain Tire Sale",
                   ((_month("December"), _month("November"),
                     _promo("Mountain Tire Sale")),)),
    BenchmarkQuery(43, "US 2001 2002 2003 2004",
                   ((Spec("DimGeography", "CountryRegionCode", "US"),
                     _year("2001"), _year("2002"), _year("2003"),
                     _year("2004")),)),
    BenchmarkQuery(44, "Seattle Saddles 1245550139",
                   ((_city("Seattle"), _sub("Saddles"),
                     Spec("DimCustomer", "Phone", "1245550139")),),
                   note="the number is a customer phone in our schema"),
    BenchmarkQuery(45, "San Francisco Palo Alto Santa Cruz",
                   ((_city("San Francisco"), _city("Palo Alto"),
                     _city("Santa Cruz")),)),
    BenchmarkQuery(46, "7800 Corrinne Court Sunday",
                   ((Spec("DimCustomer", "AddressLine1",
                          "7800 Corrinne Court"),
                     Spec("DimDate", "DayNameOfWeek", "Sunday")),)),
    BenchmarkQuery(47, "North America Europe Pacific Bikes 2003",
                   ((_group("North America"), _group("Europe"),
                     _group("Pacific"), _cat("Bikes"), _year("2003")),)),
    BenchmarkQuery(48, "Sealed cartridge Horquilla GM",
                   ((_desc("Sealed cartridge bearings; Horquilla GM "
                           "compatible"),),)),
    BenchmarkQuery(49, "LL Mountain Front Wheel US",
                   ((_pname("LL Mountain Front Wheel"),
                     Spec("DimGeography", "CountryRegionCode", "US")),
                    (_model("LL Mountain Front Wheel"),
                     Spec("DimGeography", "CountryRegionCode", "US")))),
    BenchmarkQuery(50, "Headlights Dual-Beam Weatherproof",
                   ((_desc("Dual-beam weatherproof headlight with halogen "
                           "bulbs"),),
                    (_pname("Headlights - Dual-Beam"),
                     _pname("Headlights - Weatherproof")))),
)
"""Table 3: the 50 AW_ONLINE benchmark queries with ground truth."""


# Reseller-flavoured replication queries for §6.3's AW_RESELLER run:
# keywords drawn from dimensions the online fact table does not use
# (Reseller, Employee), mixed with shared ones.
AW_RESELLER_QUERIES: tuple[BenchmarkQuery, ...] = (
    BenchmarkQuery(101, "Warehouse",
                   ((Spec("DimBusinessType", "BusinessTypeName", "Warehouse"),),)),
    BenchmarkQuery(102, "Specialty Bike Shop",
                   ((Spec("DimBusinessType", "BusinessTypeName",
                          "Specialty Bike Shop"),),)),
    BenchmarkQuery(103, "Sales Manager",
                   ((Spec("DimEmployee", "Title", "Sales Manager"),),)),
    BenchmarkQuery(104, "European Sales",
                   ((Spec("DimDepartment", "DepartmentName",
                          "European Sales"),),)),
    BenchmarkQuery(105, "Marketing Mountain Bikes",
                   ((Spec("DimDepartment", "DepartmentName", "Marketing"),
                     _sub("Mountain Bikes")),)),
    BenchmarkQuery(106, "British Columbia",
                   ((_state("British Columbia"),),)),
    BenchmarkQuery(107, "Vancouver Components",
                   ((_city("Vancouver"), _cat("Components")),)),
    BenchmarkQuery(108, "Regional Director Helmets",
                   ((Spec("DimEmployee", "Title", "Regional Director"),
                     _sub("Helmets")),)),
    BenchmarkQuery(109, "Value Added Reseller Bikes",
                   ((Spec("DimBusinessType", "BusinessTypeName",
                          "Value Added Reseller"), _cat("Bikes")),)),
    BenchmarkQuery(110, "Customer Service October",
                   ((Spec("DimDepartment", "DepartmentName",
                          "Customer Service"), _month("October")),)),
)
"""A reseller-dimension query set for replicating Figure 4 on AW_RESELLER."""
