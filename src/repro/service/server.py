"""The concurrent KDAP HTTP service (stdlib-only).

:class:`KdapService` turns one immutable warehouse into a multi-client
JSON service::

    POST /v1/explore        {"query": "...", "pick": 1, "budget": {...}}
    POST /v1/differentiate  {"query": "...", "limit": 10, ...}
    POST /v1/explain        {"query": "...", "pick": 1, ...}
    GET  /v1/healthz        liveness + overload state
    GET  /v1/statz          admission counters, latency, SLO, per-worker
    GET  /v1/metricz        Prometheus text exposition (fleet rollup)
    GET  /v1/eventz?n=K     newest K structured lifecycle events
    GET  /v1/slowlogz       merged per-worker slow-query log

The request path is admission → clamp → execute → envelope:

1. the HTTP handler thread parses strictly (:func:`~repro.service.
   protocol.parse_request`; any client defect → 400) and submits to the
   bounded admission queue — full queue → 429 + ``Retry-After``,
   draining → 503;
2. a worker takes the job FIFO (shedding entries whose enqueue deadline
   lapsed), builds the per-request budget by clamping client hints
   against server ceilings, and executes on its *own* long-lived
   :class:`~repro.core.session.KdapSession`;
3. engine errors become envelope statuses via the CLI taxonomy
   (deadline→504, backend→502, budget-partial→**200** with
   ``"partial": true`` + diagnostics) — a client bug or an overloaded
   server never produces a traceback or a hung connection.

One session per worker gives each worker a private metrics registry and
plan cache (no cross-request smearing; the text index *is* shared — it
is immutable) and respects the sqlite mirror's connection lifetime.
``/v1/statz`` rolls the per-worker registries up next to the server's
own admission/latency instruments.

Shutdown is a drain, not a drop: :meth:`KdapService.shutdown` stops
admitting (503 + ``Retry-After``), lets queued and in-flight work finish
within ``drain_deadline_s``, aborts the remainder with 503, then closes
sessions and the listener.  Trace files are written atomically (tmp +
``os.replace``) so a drain-deadline exit never leaves truncated JSON
under ``--trace-dir``.

With ``telemetry`` on (the default) the service also runs the always-on
pipeline: every lifecycle transition lands in a bounded
:class:`~repro.obs.events.EventLog`, full traces are kept only when the
:class:`~repro.obs.sampling.TailSampler` says they matter, a
:class:`~repro.obs.promexport.RuntimeStatsPoller` keeps load gauges
fresh for ``/v1/metricz``, and a :class:`~repro.obs.slo.SloTracker`
watches the latency/error objective and emits burn events.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core import BELLWETHER, SURPRISE, KdapSession, RankingMethod
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from ..obs.promexport import (
    PROMETHEUS_CONTENT_TYPE,
    RuntimeStatsPoller,
    render_prometheus,
    rollup_registries,
)
from ..obs.sampling import SamplingPolicy, TailSampler
from ..obs.slo import SloPolicy, SloTracker
from ..obs.tracer import Tracer, current_tracer, request_scope, \
    tracing_scope
from ..plan.backends import InMemoryBackend, create_backend
from ..relational.errors import (
    BackendError,
    BudgetExceeded,
    DeadlineExceeded,
    RelationalError,
)
from ..resilience import (
    FaultInjectingBackend,
    ResilientBackend,
    create_resilient_backend,
)
from ..resilience.diagnostics import Diagnostics
from ..textindex.index import AttributeTextIndex
from .admission import AdmissionQueue, Draining, Job, QueueFull, WorkerPool
from .config import ServiceConfig
from .protocol import (
    HTTP_DRAINING,
    HTTP_SHED,
    RequestError,
    differentiate_payload,
    error_payload,
    explore_payload,
    make_budget,
    parse_request,
)

logger = logging.getLogger(__name__)

ROUTES = {
    "/v1/explore": "explore",
    "/v1/differentiate": "differentiate",
    "/v1/explain": "explain",
}

MAX_BODY_BYTES = 1_000_000

#: Bucket edges for count-valued histograms (plan calls per request).
COUNT_BOUNDARIES = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                    500.0, 1000.0, 5000.0, 20000.0)


class KdapService:
    """One warehouse, one admission queue, N worker sessions."""

    def __init__(self, schema, config: ServiceConfig | None = None,
                 index: AttributeTextIndex | None = None):
        self.schema = schema
        self.config = config or ServiceConfig()
        if index is None:
            index = AttributeTextIndex()
            index.index_database(schema.database, schema.searchable)
        self.index = index
        self.registry = MetricsRegistry()
        # one materialization tier shared by every worker session: a
        # view admitted (or lattice-derived) under one worker answers
        # all of them, and admission history pools across the fleet
        if self.config.materialize:
            from ..warehouse.materialize import MaterializationTier

            self.tier = MaterializationTier(schema)
        else:
            self.tier = None
        # the always-on telemetry pipeline (config.telemetry=False
        # reverts to the bare service: no events, no sampling, no
        # poller, no SLO — and unconditional trace writes)
        if self.config.telemetry:
            self.events: EventLog | None = EventLog(
                capacity=self.config.event_capacity,
                sink_path=self.config.event_path)
            self.sampler: TailSampler | None = (
                TailSampler(SamplingPolicy(
                    slow_ms=self.config.trace_slow_ms,
                    head_n=self.config.trace_head_n),
                    registry=self.registry)
                if self.config.trace_dir is not None else None)
            self.slo: SloTracker | None = SloTracker(
                SloPolicy(
                    target_p95_ms=self.config.slo_target_p95_ms,
                    error_budget=self.config.slo_error_budget,
                    short_window_s=self.config.slo_short_window_s,
                    long_window_s=self.config.slo_long_window_s,
                    burn_alert=self.config.slo_burn_alert),
                event_log=self.events)
            self.poller: RuntimeStatsPoller | None = RuntimeStatsPoller(
                self, interval_s=self.config.poll_interval_s)
        else:
            self.events = None
            self.sampler = None
            self.slo = None
            self.poller = None
        self.queue = AdmissionQueue(self.config.queue_depth, self.registry)
        self.pool = WorkerPool(self.queue, self.config.workers,
                               self._build_session, self._execute,
                               self.registry,
                               on_shed=self._on_queue_timeout)
        self.state = "created"
        self._started_at = time.monotonic()
        self._request_seq = itertools.count(1)
        self._httpd: ThreadingHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._shutdown_lock = threading.Lock()
        if self.config.trace_dir is not None:
            os.makedirs(self.config.trace_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, host: str = "127.0.0.1", port: int = 0
              ) -> tuple[str, int]:
        """Bind, start workers and the accept loop; returns (host, port).

        ``port=0`` binds an ephemeral port (tests run many servers).
        """
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            name="kdap-http", daemon=True)
        self._serve_thread.start()
        if self.poller is not None:
            self.poller.start()
        self.state = "serving"
        self._started_at = time.monotonic()
        bound = self._httpd.server_address
        logger.info("kdap service on %s:%d (%d workers, queue depth %d)",
                    bound[0], bound[1], self.config.workers,
                    self.config.queue_depth)
        return bound[0], bound[1]

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("service is not started")
        return self._httpd.server_address[1]

    def __enter__(self) -> "KdapService":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def drain(self) -> int:
        """Stop admitting; wait for queued + in-flight work, then abort
        the leftovers with 503.  Returns the number aborted."""
        self.state = "draining"
        self.queue.drain()
        deadline = time.monotonic() + self.config.drain_deadline_s
        while time.monotonic() < deadline:
            if not len(self.queue) and self.pool.in_flight == 0:
                break
            time.sleep(0.02)
        aborted = self.queue.abort_pending(self._abort_job)
        if aborted:
            logger.warning("drain deadline hit: aborted %d queued "
                           "request(s) with 503", aborted)
        return aborted

    def _abort_job(self, job: Job) -> None:
        job.finish(HTTP_DRAINING, error_payload(
            "draining", "server shut down before this request ran"))
        if self.events is not None:
            self.events.emit("aborted", request_id=job.request_id,
                             op=job.spec.kind, reason="drain_deadline")

    def _on_queue_timeout(self, job: Job) -> None:
        if self.events is not None:
            self.events.emit("shed", request_id=job.request_id,
                             op=job.spec.kind, reason="queue_timeout")

    def shutdown(self) -> None:
        """Graceful stop: drain, then stop workers and the listener."""
        with self._shutdown_lock:
            if self.state == "stopped":
                return
            if self.state != "created":
                self.drain()
            if self.poller is not None:
                self.poller.stop()
            self.pool.stop()
            if self._httpd is not None:
                self._httpd.shutdown()
                self._httpd.server_close()
            if self.events is not None:
                self.events.close()  # flush the JSONL sink; ring stays
            self.state = "stopped"

    # ------------------------------------------------------------------
    # per-worker sessions
    # ------------------------------------------------------------------
    def _build_session(self, worker_index: int) -> KdapSession:
        """The session a worker owns for its whole life.

        Chaos mode wraps the primary in a per-worker-seeded
        :class:`FaultInjectingBackend` *behind* the resilient wrapper,
        with a clean in-memory fallback — so injected faults exercise
        the retry/failover ladder instead of surfacing to clients.
        """
        config = self.config
        if config.chaotic:
            primary = FaultInjectingBackend(
                create_backend(self.schema, config.backend),
                error_rate=config.chaos_error_rate,
                latency_s=config.chaos_latency_s,
                seed=config.chaos_seed + worker_index)
            backend = ResilientBackend(
                primary, fallback=lambda: InMemoryBackend(self.schema))
        elif config.resilient:
            backend = create_resilient_backend(self.schema, config.backend)
        else:
            backend = create_backend(self.schema, config.backend,
                                     workers=config.session_workers)
        return KdapSession(self.schema, index=self.index, backend=backend,
                           workers=config.session_workers,
                           slow_query_ms=config.slow_query_ms,
                           materialize=(self.tier if self.tier is not None
                                        else False))

    # ------------------------------------------------------------------
    # the request path (handler thread side)
    # ------------------------------------------------------------------
    def submit(self, kind: str, body: bytes
               ) -> tuple[int, dict, dict]:
        """Parse → admit → wait; returns (status, payload, headers)."""
        request_id = f"r{next(self._request_seq):06d}"
        headers = {"X-Request-Id": request_id}
        try:
            spec = parse_request(kind, body)
        except RequestError as exc:
            return 400, self._finalize(request_id, exc.payload()), headers
        now = time.monotonic()
        job = Job(spec, request_id, now,
                  now + self.config.enqueue_deadline_ms / 1000.0)
        retry_after = str(max(1, round(self.config.retry_after_s)))
        try:
            self.queue.submit(job)
        except Draining:
            headers["Retry-After"] = retry_after
            if self.events is not None:
                self.events.emit("rejected", request_id=request_id,
                                 op=kind, reason="draining")
            return HTTP_DRAINING, self._finalize(request_id, error_payload(
                "draining", "server is draining; retry elsewhere"
            )), headers
        except QueueFull as exc:
            headers["Retry-After"] = retry_after
            if self.events is not None:
                self.events.emit("shed", request_id=request_id,
                                 op=kind, reason="queue_full")
            return HTTP_SHED, self._finalize(request_id, error_payload(
                "overloaded", str(exc))), headers
        if self.events is not None:
            self.events.emit("admitted", request_id=request_id,
                             op=kind, query=spec.query)
        if not job.wait(self._wait_timeout_s(spec)):
            # belt and braces: the per-request deadline should always fire
            # first, but a handler must never hang on a lost job
            job.finish(504, error_payload(
                "timeout", "request did not complete in time"))
        return job.status, self._finalize(request_id, job.body), headers

    @staticmethod
    def _finalize(request_id: str, body: dict) -> dict:
        return {"request_id": request_id, **(body or {})}

    def _wait_timeout_s(self, spec) -> float:
        """Upper bound on a handler's wait: queue sojourn + the clamped
        execution deadline + slack for envelope building."""
        hint = spec.budget_hints.get("deadline_ms")
        deadline_ms = (self.config.max_deadline_ms if hint is None
                       else min(hint, self.config.max_deadline_ms))
        return (self.config.enqueue_deadline_ms + deadline_ms) / 1000.0 \
            + 30.0

    # ------------------------------------------------------------------
    # the request path (worker side)
    # ------------------------------------------------------------------
    def _execute(self, session: KdapSession, job: Job) -> None:
        spec = job.spec
        queue_wait_s = time.monotonic() - job.enqueued_at
        budget = make_budget(spec, self.config)
        tracer = (Tracer() if self.config.trace_dir is not None else None)
        calls_before = session.engine.counters.total_calls
        worker = threading.current_thread().name
        if self.events is not None:
            self.events.emit("started", request_id=job.request_id,
                             op=spec.kind, worker=worker,
                             queue_wait_ms=round(queue_wait_s * 1000.0, 3))
        started = time.perf_counter()
        try:
            with request_scope(job.request_id), tracing_scope(tracer):
                with current_tracer().span(
                        "request", id=job.request_id, kind=spec.kind,
                        query=spec.query) as span:
                    status, body = self._dispatch(session, spec, budget)
                    span.set_tag("status", status)
        except DeadlineExceeded as exc:
            status, body = 504, error_payload(
                "deadline", str(exc),
                diagnostics=Diagnostics.from_budget(budget).as_dict())
        except BudgetExceeded as exc:
            # normally the session degrades in place; an escaped budget
            # error still honours the taxonomy: 200 + partial flag,
            # with the diagnostics standing in for the missing result
            status, body = 200, {
                "partial": True,
                "diagnostics": Diagnostics.from_budget(budget).as_dict(),
                "error": {"type": "budget", "message": str(exc)},
            }
        except BackendError as exc:
            status, body = 502, error_payload("backend", str(exc))
        except RelationalError as exc:
            status, body = 500, error_payload("engine", str(exc))
        except Exception as exc:  # noqa: BLE001 - worker must survive
            logger.exception("request %s crashed", job.request_id)
            status, body = 500, error_payload(
                "internal", f"unexpected {type(exc).__name__}")
        elapsed_s = time.perf_counter() - started
        elapsed_ms = elapsed_s * 1000.0
        self._observe(spec.kind, status, elapsed_s, queue_wait_s,
                      session.engine.counters.total_calls - calls_before)
        if self.slo is not None:
            self.slo.observe(elapsed_ms=elapsed_ms, error=status >= 500)
        trace_reason = None
        if tracer is not None:
            if self.sampler is not None:
                decision = self.sampler.decide(
                    status=status, elapsed_ms=elapsed_ms,
                    truncated=budget.truncated)
                trace_reason = decision.reason
                if decision.persist:
                    self._write_trace(tracer, job.request_id)
            else:
                self._write_trace(tracer, job.request_id)
        if self.events is not None:
            self._emit_outcome(job, spec, status, body, elapsed_ms,
                               queue_wait_s, worker, budget, trace_reason)
        job.finish(status, body)

    def _emit_outcome(self, job: Job, spec, status: int, body,
                      elapsed_ms: float, queue_wait_s: float,
                      worker: str, budget, trace_reason: str | None
                      ) -> None:
        """One ``finished``/``errored`` event carrying the attribution
        package: fingerprint, budget outcome, truncation reasons,
        matcher notes, and the trace-persist decision (the request id in
        every event doubles as the trace id)."""
        fields = {
            "request_id": job.request_id,
            "op": spec.kind,
            "status": status,
            "elapsed_ms": round(elapsed_ms, 3),
            "queue_wait_ms": round(queue_wait_s * 1000.0, 3),
            "worker": worker,
        }
        if isinstance(body, dict):
            if body.get("partial"):
                fields["partial"] = True
            fingerprint = self._fingerprint(body)
            if fingerprint is not None:
                fields["interpretation_fp"] = fingerprint
            error = body.get("error")
            if isinstance(error, dict) and error.get("notes"):
                fields["notes"] = list(error["notes"])[:5]
        if budget.truncated:
            fields["truncation"] = sorted(
                {event.reason for event in budget.events})
        if budget.notes and "notes" not in fields:
            fields["notes"] = list(budget.notes)[:5]
        if trace_reason is not None:
            fields["trace"] = trace_reason
        self.events.emit("errored" if status >= 500 else "finished",
                         **fields)

    @staticmethod
    def _fingerprint(body: dict) -> str | None:
        """A short stable digest of the chosen interpretation(s), so an
        operator can group events by what the keywords resolved to
        without shipping the whole interpretation over the event log."""
        subject = body.get("interpretation") or body.get("interpretations")
        if subject is None and isinstance(body.get("explain"), dict):
            subject = body["explain"].get("interpretation")
        if subject is None:
            return None
        blob = json.dumps(subject, sort_keys=True, default=str)
        return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:10]

    def _dispatch(self, session: KdapSession, spec, budget
                  ) -> tuple[int, dict]:
        measure = SURPRISE if spec.measure == "surprise" else BELLWETHER
        if spec.kind == "differentiate":
            ranked = session.differentiate(
                spec.query, method=RankingMethod(spec.method),
                limit=spec.limit, preview_sizes=spec.preview_sizes,
                budget=budget, matchers=spec.matchers)
            if not ranked:
                return 404, self._no_result(
                    session, "no interpretation found")
            return 200, differentiate_payload(ranked, budget)
        if spec.kind == "explore":
            ranked = session.differentiate(
                spec.query, limit=max(spec.pick, 5), budget=budget,
                matchers=spec.matchers)
            if len(ranked) < spec.pick:
                return 404, self._no_result(
                    session,
                    f"only {len(ranked)} interpretation(s) found")
            result = session.explore(ranked[spec.pick - 1],
                                     interestingness=measure,
                                     budget=budget)
            return 200, explore_payload(result)
        # explain: reuses the ambient per-request tracer when one is
        # installed, so the explained spans land in the request trace
        result = session.explain(spec.query, pick=spec.pick,
                                 interestingness=measure, budget=budget,
                                 matchers=spec.matchers)
        if result is None:
            return 404, self._no_result(
                session,
                f"fewer than {spec.pick} interpretations found")
        return 200, {"explain": result.as_dict(),
                     "partial": budget.truncated}

    @staticmethod
    def _no_result(session: KdapSession, message: str) -> dict:
        """A 404 body that explains *why* keywords produced nothing:
        per-keyword matcher notes ride along when the chain dropped any."""
        report = session.last_match_report
        notes = list(report.notes()) if report is not None else []
        return error_payload("no_result", message, notes=notes)

    def _observe(self, kind: str, status: int, elapsed_s: float,
                 queue_wait_s: float, plan_calls: int) -> None:
        self.registry.histogram(f"kdap.service.seconds.{kind}").observe(
            elapsed_s)
        self.registry.histogram("kdap.service.queue_wait_s").observe(
            queue_wait_s)
        self.registry.histogram(
            "kdap.service.plan_calls",
            boundaries=COUNT_BOUNDARIES).observe(plan_calls)
        self.registry.counter(f"kdap.service.status.{status}").inc()
        if status >= 500:
            self.registry.counter("kdap.service.failed").inc()

    def _write_trace(self, tracer: Tracer, request_id: str) -> None:
        """Atomically persist one request's Chrome trace.

        Write-to-tmp + ``os.replace`` so the final path either holds
        complete JSON or does not exist — a drain-deadline abort (or
        any exit) mid-write can no longer leave a truncated trace file
        that chokes ``chrome://tracing`` and the CI artifact checks.
        """
        path = os.path.join(self.config.trace_dir,
                            f"trace-{request_id}.json")
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(tracer.to_chrome_trace(), fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:  # tracing must never fail a request
            logger.warning("could not write %s: %s", path, exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # introspection endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> tuple[int, dict]:
        healthy = self.state == "serving"
        return (200 if healthy else HTTP_DRAINING), {
            "status": "ok" if healthy else self.state,
            "state": self.state,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self.config.workers,
            "queued": len(self.queue),
            "in_flight": self.pool.in_flight,
        }

    def statz(self) -> dict:
        """Server admission/latency instruments plus per-worker session
        stats, a cross-session rollup, and the telemetry sections (SLO
        state, event-log accounting, trace-sampling accounting, merged
        slow-log counts) when telemetry is on."""
        workers = []
        rollup: dict[str, int] = {}
        registries = []
        resilience_rollup = {"retries": 0, "failovers": 0,
                             "transient_errors": 0}
        for position, session in enumerate(list(self.pool.sessions)):
            registries.append(session.metrics)
            snapshot = session.metrics.snapshot()
            cache = session.engine.cache_stats
            entry = {
                "worker": position,
                "backend": session.engine.backend_name,
                "plan_cache": {"hits": cache.hits,
                               "misses": cache.misses,
                               "evictions": cache.evictions},
                "metrics": snapshot,
            }
            stats = getattr(session.engine.backend, "resilience", None)
            if stats is not None:
                entry["resilience"] = stats.as_dict()
                resilience_rollup["retries"] += stats.retries
                resilience_rollup["failovers"] += stats.failovers
                resilience_rollup["transient_errors"] += \
                    stats.transient_errors
            for name, value in snapshot["counters"].items():
                rollup[name] = rollup.get(name, 0) + value
            workers.append(entry)
        # merged per-worker histograms: buckets sum elementwise, so the
        # rollup's count/sum/extremes are fleet-true, not per-worker
        # (quantile summaries for the merged view ride /v1/metricz)
        merged = rollup_registries(registries)
        histogram_rollup = {
            name: {"count": state["count"],
                   "sum": round(state["sum"], 6),
                   "min": state["min"], "max": state["max"]}
            for name, state in sorted(merged["histograms"].items())}
        out = {
            "state": self.state,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "config": {
                "workers": self.config.workers,
                "queue_depth": self.config.queue_depth,
                "enqueue_deadline_ms": self.config.enqueue_deadline_ms,
                "max_deadline_ms": self.config.max_deadline_ms,
                "backend": self.config.backend,
                "chaotic": self.config.chaotic,
                "telemetry": self.config.telemetry,
            },
            "service": self.registry.snapshot(),
            "workers": workers,
            "rollup": {"counters": dict(sorted(rollup.items())),
                       "histograms": histogram_rollup,
                       "resilience": resilience_rollup,
                       **({"materialize": self.tier.snapshot()}
                          if self.tier is not None else {})},
        }
        if self.slo is not None:
            out["slo"] = self.slo.status()
        if self.events is not None:
            out["events"] = self.events.snapshot()
        if self.sampler is not None:
            out["sampling"] = self.sampler.snapshot()
        if self.config.slow_query_ms is not None:
            out["slowlog"] = self._slowlog_counts()
        return out

    def _slowlog_counts(self) -> dict:
        """Slow-log accounting merged across workers (records ride
        ``/v1/slowlogz``)."""
        observed = recorded = retained = 0
        for session in list(self.pool.sessions):
            log = session.slow_log
            if log is None:
                continue
            observed += log.observed
            recorded += log.recorded
            retained += len(log)
        return {"threshold_ms": self.config.slow_query_ms,
                "observed": observed, "recorded": recorded,
                "retained": retained}

    def metricz(self) -> str:
        """The Prometheus exposition: server registry + every worker
        registry rolled up into one fleet view."""
        registries = [self.registry] + [session.metrics for session
                                        in list(self.pool.sessions)]
        return render_prometheus(registries)

    def eventz(self, n: int = 50) -> tuple[int, dict]:
        """The newest ``n`` structured events plus log accounting."""
        if self.events is None:
            return 404, error_payload(
                "telemetry_disabled",
                "the event log is off (telemetry=False)")
        return 200, {"log": self.events.snapshot(),
                     "events": self.events.tail(n)}

    def slowlogz(self) -> dict:
        """Per-worker slow-query records merged on one timeline.

        Span trees stay out of the payload (they can dwarf everything
        else); each record's ``request_id`` keys the persisted trace
        file when the tail sampler kept one.
        """
        records = []
        for session in list(self.pool.sessions):
            log = session.slow_log
            if log is None:
                continue
            for record in log.records:
                entry = record.as_dict()
                entry["has_span_tree"] = entry.pop("span_tree") is not None
                records.append(entry)
        records.sort(key=lambda entry: entry["wall_time"])
        counts = self._slowlog_counts() if \
            self.config.slow_query_ms is not None else {
                "threshold_ms": None, "observed": 0, "recorded": 0,
                "retained": 0}
        return {**counts, "records": records[-64:]}


def _make_handler(service: KdapService):
    """A handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_POST(self) -> None:  # noqa: N802 - stdlib API
            kind = ROUTES.get(self.path)
            if kind is None:
                self._send(404, error_payload(
                    "not_found", f"no such endpoint: {self.path}"))
                return
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self._send(400, error_payload(
                    "bad_request", "invalid Content-Length"))
                return
            if length > MAX_BODY_BYTES:
                self._send(400, error_payload(
                    "bad_request",
                    f"body too large (> {MAX_BODY_BYTES} bytes)"))
                return
            body = self.rfile.read(length) if length else b""
            status, payload, headers = service.submit(kind, body)
            self._send(status, payload, headers)

        def do_GET(self) -> None:  # noqa: N802 - stdlib API
            parsed = urllib.parse.urlsplit(self.path)
            path = parsed.path
            if path == "/v1/healthz":
                status, payload = service.healthz()
                self._send(status, payload)
            elif path == "/v1/statz":
                self._send(200, service.statz())
            elif path == "/v1/metricz":
                self._send_text(200, service.metricz(),
                                PROMETHEUS_CONTENT_TYPE)
            elif path == "/v1/eventz":
                query = urllib.parse.parse_qs(parsed.query)
                try:
                    n = int(query.get("n", ["50"])[0])
                    if n < 0:
                        raise ValueError
                except ValueError:
                    self._send(400, error_payload(
                        "bad_request",
                        "n must be a non-negative integer"))
                    return
                status, payload = service.eventz(n)
                self._send(status, payload)
            elif path == "/v1/slowlogz":
                self._send(200, service.slowlogz())
            else:
                self._send(404, error_payload(
                    "not_found", f"no such endpoint: {self.path}"))

        def _send(self, status: int, payload: dict,
                  headers: dict | None = None) -> None:
            self._send_bytes(status, json.dumps(payload).encode("utf-8"),
                             "application/json", headers)

        def _send_text(self, status: int, text: str,
                       content_type: str) -> None:
            self._send_bytes(status, text.encode("utf-8"), content_type)

        def _send_bytes(self, status: int, data: bytes,
                        content_type: str,
                        headers: dict | None = None) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            try:
                self.wfile.write(data)
            except (BrokenPipeError, ConnectionResetError):
                pass  # the client hung up; nothing to salvage

        def log_message(self, fmt: str, *args) -> None:
            logger.debug("%s " + fmt, self.address_string(), *args)

    return Handler


def serve_until_signalled(service: KdapService, host: str, port: int
                          ) -> int:
    """Run ``service`` until SIGTERM/SIGINT, then drain and stop.

    The signal handler only sets an event — the drain itself runs on the
    main thread, so in-flight requests finish (or are 503-aborted at the
    drain deadline) before the process exits.  Returns 0.
    """
    import signal

    stop = threading.Event()

    def _request_stop(signum, _frame):
        logger.info("signal %d: draining", signum)
        stop.set()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _request_stop),
        signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
    }
    try:
        bound_host, bound_port = service.start(host, port)
        print(f"kdap service listening on http://{bound_host}:{bound_port}"
              f" ({service.config.workers} workers, queue depth "
              f"{service.config.queue_depth})")
        stop.wait()
        service.shutdown()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0
