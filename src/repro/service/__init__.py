"""Concurrent KDAP serving: admission control, shedding, graceful drain.

One immutable warehouse, many concurrent clients::

    from repro.service import KdapService, ServiceConfig

    with KdapService(schema, ServiceConfig(workers=4)) as service:
        port = service.port   # POST /v1/explore etc.

Requests flow admission → clamp → execute → envelope (see
:mod:`repro.service.server`); overload is answered with fast, honest
429/503 responses rather than queue growth, and budget-truncated work
degrades to 200 + ``"partial": true`` with diagnostics.

Public surface::

    from repro.service import (
        KdapService, ServiceConfig, serve_until_signalled,
        AdmissionQueue, WorkerPool, Job, QueueFull, Draining,
        RequestSpec, RequestError, parse_request, make_budget,
        EXIT_TO_HTTP,
    )
"""

from .admission import AdmissionQueue, Draining, Job, QueueFull, WorkerPool
from .config import MAX_HINT_COUNT, MAX_HINT_DEADLINE_MS, ServiceConfig
from .protocol import (
    EXIT_TO_HTTP,
    HTTP_DRAINING,
    HTTP_SHED,
    RequestError,
    RequestSpec,
    error_payload,
    make_budget,
    parse_request,
)
from .server import KdapService, serve_until_signalled

__all__ = [
    "AdmissionQueue",
    "Draining",
    "EXIT_TO_HTTP",
    "HTTP_DRAINING",
    "HTTP_SHED",
    "Job",
    "KdapService",
    "MAX_HINT_COUNT",
    "MAX_HINT_DEADLINE_MS",
    "QueueFull",
    "RequestError",
    "RequestSpec",
    "ServiceConfig",
    "WorkerPool",
    "error_payload",
    "make_budget",
    "parse_request",
    "serve_until_signalled",
]
