"""Service configuration: sizing, ceilings, and degradation knobs.

One :class:`ServiceConfig` pins every robustness decision the server
makes — how many worker sessions execute queries, how deep the admission
queue may grow before load is shed, how long a request may wait queued,
the server-side :class:`~repro.resilience.budget.Budget` ceilings that
clamp client hints, and how patient a drain is.  Keeping them in one
frozen dataclass means tests and the chaos harness can spin up servers
with pathological settings (queue depth 1, millisecond deadlines)
without touching the serving code.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Sanity bounds for client budget hints.  Values outside these are not
#: clamped but rejected with a 400 — a hint of 10**18 rows is a client
#: bug, not an aggressive preference.
MAX_HINT_DEADLINE_MS = 3_600_000.0  # one hour
MAX_HINT_COUNT = 1_000_000_000  # rows / groups / interpretations


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`~repro.service.server.KdapService` needs.

    Parameters
    ----------
    workers:
        Long-lived query worker threads.  Each owns its *own*
        :class:`~repro.core.session.KdapSession` (private metrics
        registry, plan cache, and — on sqlite — mirror connections), so
        worker count bounds both concurrency and resource fan-out.
    queue_depth:
        Admission queue capacity.  A request arriving while
        ``queue_depth`` requests already wait is shed immediately with
        429 + ``Retry-After`` — the server prefers a fast honest "try
        later" over unbounded queueing.
    enqueue_deadline_ms:
        Longest a request may sit *queued* before execution starts;
        expired entries are shed with 429 when a worker reaches them.
        This bounds queue sojourn even when the queue never fills.
    max_deadline_ms:
        Server-side ceiling on a request's wall-clock deadline.  Client
        hints are clamped to it; requests without a hint get exactly
        this deadline, so every admitted request carries a finite
        deadline.
    max_rows / max_groups / max_interpretations:
        Optional ceilings for the corresponding budget hints (None =
        no server-side cap; the hint, if any, applies unclamped).
    drain_deadline_s:
        How long a drain (SIGTERM / :meth:`KdapService.drain`) waits
        for queued + in-flight work before aborting the remainder
        with 503.
    backend:
        Execution backend name per worker session (``"memory"`` or
        ``"sqlite"``).
    resilient:
        Wrap each worker's backend in retry + failover
        (:func:`~repro.resilience.create_resilient_backend`).
    session_workers:
        ``workers=`` passed to each :class:`KdapSession` (intra-query
        parallelism: ray prefetch, morsel scans).  The default of 1
        keeps thread fan-out = ``workers`` exactly.
    chaos_error_rate / chaos_latency_s / chaos_seed:
        When ``chaos_error_rate > 0`` or ``chaos_latency_s > 0``, each
        worker's primary backend is wrapped in a seeded
        :class:`~repro.resilience.faults.FaultInjectingBackend` *behind*
        the resilient wrapper — the benchmark's chaos mode, proving
        retries/failover and shedding compose under injected faults.
        Workers get distinct derived seeds so their fault schedules
        differ deterministically.
    materialize:
        Share one
        :class:`~repro.warehouse.materialize.MaterializationTier`
        across every worker session (default True): a view admitted or
        rolled up by one worker answers all of them, and the pooled
        ``kdap.materialize.*`` counters surface in ``/v1/statz``.
        False runs workers without the tier.
    trace_dir:
        When set, each request runs under its own tracer; whether the
        Chrome trace reaches ``<trace_dir>/trace-<request_id>.json`` is
        the tail sampler's call (see ``trace_slow_ms``/``trace_head_n``;
        with telemetry off every trace is written unconditionally).
    retry_after_s:
        The ``Retry-After`` hint (seconds) sent with 429/503 responses.
    telemetry:
        Master switch for the always-on pipeline: the structured event
        log, tail-based trace sampling, the runtime-stats poller behind
        ``/v1/metricz``, and SLO burn tracking.  False reverts to the
        bare PR-7 service (no events, unconditional trace writes).
    event_capacity / event_path:
        Ring size of the in-memory event log and an optional JSONL file
        sink mirroring every event for external collectors.
    trace_slow_ms / trace_head_n:
        Tail-sampling policy: always persist traces slower than
        ``trace_slow_ms``; keep 1-in-``trace_head_n`` of healthy fast
        ones (0 disables head sampling).  Errored and budget-truncated
        requests are always persisted regardless.
    slow_query_ms:
        Per-worker slow-query log threshold (None disables the log and
        empties ``/v1/slowlogz``).
    slo_target_p95_ms / slo_error_budget / slo_burn_alert /
    slo_short_window_s / slo_long_window_s:
        The service objective: a request is *bad* when it errors or
        exceeds ``slo_target_p95_ms``; burn rate is the bad-fraction
        over the window divided by ``slo_error_budget``, alerting when
        it exceeds ``slo_burn_alert`` in both windows.
    poll_interval_s:
        Runtime-stats poller period (queue depth / in-flight /
        utilization / shed-rate gauges).
    """

    workers: int = 4
    queue_depth: int = 32
    enqueue_deadline_ms: float = 2_000.0
    max_deadline_ms: float = 30_000.0
    max_rows: int | None = None
    max_groups: int | None = None
    max_interpretations: int | None = None
    drain_deadline_s: float = 10.0
    backend: str = "memory"
    resilient: bool = False
    session_workers: int = 1
    chaos_error_rate: float = 0.0
    chaos_latency_s: float = 0.0
    chaos_seed: int = 0
    materialize: bool = True
    trace_dir: str | None = None
    retry_after_s: float = 1.0
    telemetry: bool = True
    event_capacity: int = 512
    event_path: str | None = None
    trace_slow_ms: float = 1_000.0
    trace_head_n: int = 10
    slow_query_ms: float | None = 1_000.0
    slo_target_p95_ms: float = 1_000.0
    slo_error_budget: float = 0.01
    slo_burn_alert: float = 2.0
    slo_short_window_s: float = 60.0
    slo_long_window_s: float = 600.0
    poll_interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.enqueue_deadline_ms <= 0:
            raise ValueError("enqueue_deadline_ms must be positive")
        if self.max_deadline_ms <= 0:
            raise ValueError("max_deadline_ms must be positive")
        if not 0.0 <= self.chaos_error_rate <= 1.0:
            raise ValueError("chaos_error_rate must be within [0, 1]")
        if self.event_capacity < 1:
            raise ValueError("event_capacity must be at least 1")
        if self.trace_head_n < 0:
            raise ValueError("trace_head_n must be non-negative")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    @property
    def chaotic(self) -> bool:
        """True when fault injection is wired into worker backends."""
        return self.chaos_error_rate > 0.0 or self.chaos_latency_s > 0.0
