"""Admission control: a bounded FIFO queue feeding a fixed worker pool.

The overload story in one place.  Requests enter through
:meth:`AdmissionQueue.submit`, which *never blocks*: a request either
takes a queue slot immediately or is shed right there
(:class:`QueueFull` → HTTP 429 + ``Retry-After``).  Workers take jobs in
strict FIFO order; a job whose **enqueue deadline** expired while it
waited is shed at dequeue time (429 again — executing it would only
waste a worker on a client that has likely given up).  Draining flips
one switch: new submissions raise :class:`Draining` (→ 503) while
workers keep consuming what was already admitted.

Every transition is counted in the server's
:class:`~repro.obs.metrics.MetricsRegistry` (``kdap.service.*``), so
``/v1/statz`` reports queue depth, in-flight, and shed counts from the
same machinery the sessions use for latency histograms.

The :class:`WorkerPool` owns one long-lived
:class:`~repro.core.session.KdapSession` per worker thread — sessions
are single-caller objects and sqlite mirrors hand out per-thread
connections that live until session close, so a bounded pool of
long-lived workers is the only shape that neither races nor leaks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from ..obs.metrics import MetricsRegistry


class QueueFull(Exception):
    """The admission queue is at capacity; the request was shed."""


class Draining(Exception):
    """The server is draining; no new work is admitted."""


class Job:
    """One admitted request: a spec plus a completion latch.

    The handler thread blocks on :meth:`wait`; whichever side finishes
    first — the worker with a result, or the shedding/draining machinery
    with an error — wins, and the other side's :meth:`finish` becomes a
    no-op.  ``finish`` is therefore idempotent and thread-safe.
    """

    __slots__ = ("spec", "request_id", "enqueued_at", "deadline_at",
                 "status", "body", "_done", "_lock")

    def __init__(self, spec, request_id: str, enqueued_at: float,
                 deadline_at: float):
        self.spec = spec
        self.request_id = request_id
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at
        self.status: int | None = None
        self.body: dict | None = None
        self._done = threading.Event()
        self._lock = threading.Lock()

    def finish(self, status: int, body: dict) -> bool:
        """Complete the job (first caller wins; returns False if late)."""
        with self._lock:
            if self._done.is_set():
                return False
            self.status = status
            self.body = body
            self._done.set()
            return True

    def wait(self, timeout: float) -> bool:
        """Block until the job completes (False on timeout)."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()


class AdmissionQueue:
    """Depth-bounded FIFO with per-job enqueue deadlines.

    ``submit`` is O(1) and non-blocking; ``take`` blocks a worker until
    a live job, a stop, or the poll timeout.  Expired jobs are shed
    inside ``take`` so the shedding decision and the dequeue order live
    on one lock.
    """

    def __init__(self, depth: int, registry: MetricsRegistry,
                 clock: Callable[[], float] = time.monotonic):
        self.depth = depth
        self.registry = registry
        self._clock = clock
        self._jobs: deque[Job] = deque()
        self._cond = threading.Condition()
        self._draining = False
        self._stopped = False

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def draining(self) -> bool:
        return self._draining

    def submit(self, job: Job) -> None:
        """Admit ``job`` or shed it immediately (never blocks)."""
        with self._cond:
            if self._draining or self._stopped:
                self.registry.counter(
                    "kdap.service.rejected.draining").inc()
                raise Draining("server is draining")
            if len(self._jobs) >= self.depth:
                self.registry.counter(
                    "kdap.service.shed.queue_full").inc()
                raise QueueFull(
                    f"admission queue is full ({self.depth} waiting)")
            self._jobs.append(job)
            self.registry.counter("kdap.service.admitted").inc()
            self.registry.gauge("kdap.service.queued").set(
                len(self._jobs))
            self._cond.notify()

    def take(self, timeout: float, on_shed: Callable[[Job], None]
             ) -> Job | None:
        """The next live job in FIFO order (None on timeout/stop).

        Jobs whose enqueue deadline passed while queued are handed to
        ``on_shed`` (which completes them with 429) and skipped — the
        worker keeps scanning until it finds work that is still wanted.
        """
        while True:
            with self._cond:
                while not self._jobs and not self._stopped:
                    if not self._cond.wait(timeout):
                        return None
                if not self._jobs:
                    return None
                job = self._jobs.popleft()
                self.registry.gauge("kdap.service.queued").set(
                    len(self._jobs))
            if self._clock() > job.deadline_at:
                self.registry.counter(
                    "kdap.service.shed.queue_timeout").inc()
                on_shed(job)
                continue
            return job

    def drain(self) -> None:
        """Stop admitting; already-queued jobs stay consumable."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def stop(self) -> None:
        """Wake every worker for shutdown (implies drain)."""
        with self._cond:
            self._draining = True
            self._stopped = True
            self._cond.notify_all()

    def abort_pending(self, complete: Callable[[Job], None]) -> int:
        """Empty the queue, completing each leftover via ``complete``."""
        with self._cond:
            leftovers = list(self._jobs)
            self._jobs.clear()
            self.registry.gauge("kdap.service.queued").set(0)
        for job in leftovers:
            self.registry.counter("kdap.service.aborted.drain").inc()
            complete(job)
        return len(leftovers)


class WorkerPool:
    """Fixed worker threads, each owning one session for its lifetime.

    ``session_factory(worker_index)`` builds the per-worker session
    (letting the server wire chaos/resilient backends per worker);
    ``execute(session, job)`` runs one job and must itself convert every
    engine error into an envelope — a worker thread never dies to an
    exception (a crashed worker would silently shrink capacity).
    """

    def __init__(self, queue: AdmissionQueue, workers: int,
                 session_factory, execute, registry: MetricsRegistry,
                 poll_s: float = 0.1,
                 on_shed: Callable[[Job], None] | None = None):
        self.queue = queue
        self.registry = registry
        self._execute = execute
        self._session_factory = session_factory
        self._poll_s = poll_s
        self._on_shed = on_shed
        self._stopping = False
        self.sessions: list = []
        self._threads: list[threading.Thread] = []
        self._sessions_lock = threading.Lock()
        for index in range(workers):
            thread = threading.Thread(target=self._run, args=(index,),
                                      name=f"kdap-worker-{index}",
                                      daemon=True)
            self._threads.append(thread)

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    def _run(self, index: int) -> None:
        session = self._session_factory(index)
        with self._sessions_lock:
            self.sessions.append(session)
        in_flight = self.registry.gauge("kdap.service.in_flight")
        try:
            while True:
                job = self.queue.take(self._poll_s, self._shed)
                if job is None:
                    if self._stopping:
                        break
                    continue
                if job.done:  # handler timed out / drain aborted it
                    continue
                in_flight.add(1)
                try:
                    self._execute(session, job)
                    self.registry.counter("kdap.service.completed").inc()
                finally:
                    in_flight.add(-1)
        finally:
            session.close()

    def _shed(self, job: Job) -> None:
        from .protocol import HTTP_SHED, error_payload

        job.finish(HTTP_SHED, error_payload(
            "shed", "request waited in the admission queue past its "
                    "enqueue deadline",
            request_id=job.request_id))
        if self._on_shed is not None:
            self._on_shed(job)  # telemetry hook (event emission)

    def stop(self, join_timeout_s: float = 5.0) -> None:
        """Stop consuming and join workers (sessions close on exit)."""
        self._stopping = True
        self.queue.stop()
        for thread in self._threads:
            if thread.is_alive():
                thread.join(join_timeout_s)

    @property
    def in_flight(self) -> float:
        return self.registry.gauge("kdap.service.in_flight").value
