"""Wire protocol: strict request parsing, budget clamping, envelopes.

Everything that crosses the HTTP boundary is defined here, away from
sockets and threads, so it is unit-testable (and hypothesis-fuzzable)
in isolation:

* :func:`parse_request` — strict JSON validation.  Malformed bodies,
  unknown fields, wrong types, and absurd budget hints (negative,
  ``10**18``) raise a typed :class:`RequestError` that the server maps
  to a 400 with a machine-readable error payload — a client bug never
  produces a traceback or a 500.
* :func:`make_budget` — the admission→execution contract: a fresh
  per-request :class:`~repro.resilience.budget.Budget` derived from the
  client's hints but clamped element-wise by the server's ceilings.
  Every request gets a finite deadline (the ceiling when no hint).
* envelope builders — JSON-serialisable forms of ranked star nets,
  faceted explore results, and degradation diagnostics, all carrying
  the request id.
* :data:`EXIT_TO_HTTP` — the CLI exit-code taxonomy mapped onto HTTP
  statuses (deadline→504, backend→502, budget-partial→200 + flag), so
  scripting against the CLI and against the service sees one taxonomy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core import RankingMethod
from ..resilience.budget import Budget
from .config import MAX_HINT_COUNT, MAX_HINT_DEADLINE_MS, ServiceConfig

# The CLI's exit-code taxonomy (repro.cli) projected onto HTTP statuses.
# Exit 4 (budget exhausted) intentionally maps to 200: under a budget the
# session degrades to a *partial* result, flagged in the envelope, rather
# than failing the request.
EXIT_TO_HTTP = {
    0: 200,  # explored something
    1: 404,  # ran fine, found no interpretation
    2: 400,  # malformed request (argparse usage error on the CLI)
    3: 504,  # deadline exceeded before any partial result existed
    4: 200,  # budget exhausted -> partial result + "partial": true
    5: 502,  # backend failure after retries/failover
    6: 500,  # any other engine error
}

HTTP_SHED = 429  # queue full or enqueue deadline expired
HTTP_DRAINING = 503  # server shutting down


class RequestError(Exception):
    """A client-side request defect (always surfaces as HTTP 400).

    ``field`` names the offending JSON field (empty for body-level
    defects like invalid JSON), ``message`` says what was wrong.
    """

    def __init__(self, message: str, field: str = ""):
        super().__init__(message)
        self.field = field

    def payload(self) -> dict:
        return error_payload("bad_request", str(self), field=self.field)


def error_payload(kind: str, message: str, **extra) -> dict:
    """The uniform machine-readable error body."""
    error = {"type": kind, "message": message}
    error.update({k: v for k, v in extra.items() if v})
    return {"error": error}


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------
_METHODS = {m.value for m in RankingMethod}
_MEASURES = ("surprise", "bellwether")

#: Accepted fields per endpoint (anything else is a 400: silently
#: ignoring unknown fields hides client typos like "buget").
_FIELDS = {
    "explore": ("query", "pick", "measure", "budget", "matchers"),
    "differentiate": ("query", "limit", "method", "preview_sizes",
                      "budget", "matchers"),
    "explain": ("query", "pick", "measure", "budget", "matchers"),
}

_BUDGET_FIELDS = ("deadline_ms", "max_rows", "max_groups",
                  "max_interpretations")


@dataclass(frozen=True)
class RequestSpec:
    """A validated, normalised request, ready for the admission queue."""

    kind: str
    query: str
    pick: int = 1
    limit: int = 10
    method: str = RankingMethod.STANDARD.value
    measure: str = "surprise"
    preview_sizes: bool = False
    budget_hints: dict = field(default_factory=dict)
    matchers: tuple | None = None


def _require_int(value, field_name: str, low: int, high: int) -> int:
    # bool is an int subclass; a client sending `"pick": true` is a bug
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{field_name} must be an integer",
                           field=field_name)
    if not low <= value <= high:
        raise RequestError(
            f"{field_name} must be between {low} and {high}, got {value}",
            field=field_name)
    return value


def _require_choice(value, field_name: str, choices) -> str:
    if not isinstance(value, str) or value not in choices:
        raise RequestError(
            f"{field_name} must be one of {sorted(choices)}",
            field=field_name)
    return value


def _parse_budget_hints(raw) -> dict:
    if not isinstance(raw, dict):
        raise RequestError("budget must be an object", field="budget")
    unknown = set(raw) - set(_BUDGET_FIELDS)
    if unknown:
        raise RequestError(
            f"unknown budget field(s): {', '.join(sorted(unknown))}",
            field="budget")
    hints: dict = {}
    for name, value in raw.items():
        qualified = f"budget.{name}"
        if isinstance(value, bool) or \
                not isinstance(value, (int, float)):
            raise RequestError(f"{qualified} must be a number",
                               field=qualified)
        if value != value or value in (float("inf"), float("-inf")):
            raise RequestError(f"{qualified} must be finite",
                               field=qualified)
        if value <= 0:
            raise RequestError(f"{qualified} must be positive",
                               field=qualified)
        ceiling = (MAX_HINT_DEADLINE_MS if name == "deadline_ms"
                   else MAX_HINT_COUNT)
        if value > ceiling:
            raise RequestError(
                f"{qualified} is absurdly large (> {ceiling:g})",
                field=qualified)
        if name != "deadline_ms" and not isinstance(value, int):
            raise RequestError(f"{qualified} must be an integer",
                               field=qualified)
        hints[name] = value
    return hints


def parse_request(kind: str, body: bytes) -> RequestSpec:
    """Validate one POST body into a :class:`RequestSpec` (or raise
    :class:`RequestError`)."""
    if kind not in _FIELDS:
        raise RequestError(f"unknown endpoint kind {kind!r}")
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestError(f"body is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise RequestError("body must be a JSON object")
    unknown = set(data) - set(_FIELDS[kind])
    if unknown:
        raise RequestError(
            f"unknown field(s) for {kind}: {', '.join(sorted(unknown))}")
    query = data.get("query")
    if not isinstance(query, str) or not query.strip():
        raise RequestError("query must be a non-empty string",
                           field="query")
    if len(query) > 10_000:
        raise RequestError("query is too long (max 10000 characters)",
                           field="query")
    spec = {"kind": kind, "query": query.strip()}
    if "pick" in data:
        spec["pick"] = _require_int(data["pick"], "pick", 1, 1000)
    if "limit" in data:
        spec["limit"] = _require_int(data["limit"], "limit", 1, 1000)
    if "method" in data:
        spec["method"] = _require_choice(data["method"], "method",
                                         _METHODS)
    if "measure" in data:
        spec["measure"] = _require_choice(data["measure"], "measure",
                                          _MEASURES)
    if "preview_sizes" in data:
        if not isinstance(data["preview_sizes"], bool):
            raise RequestError("preview_sizes must be a boolean",
                               field="preview_sizes")
        spec["preview_sizes"] = data["preview_sizes"]
    if "budget" in data:
        spec["budget_hints"] = _parse_budget_hints(data["budget"])
    if "matchers" in data:
        spec["matchers"] = _parse_matchers(data["matchers"])
    return RequestSpec(**spec)


_MATCHERS = ("value", "metadata", "pattern")


def _parse_matchers(raw) -> tuple:
    """An ordered, duplicate-free subset of the known matcher names."""
    if not isinstance(raw, list) or not raw:
        raise RequestError(
            "matchers must be a non-empty array of matcher names",
            field="matchers")
    names = []
    for name in raw:
        if not isinstance(name, str) or name not in _MATCHERS:
            raise RequestError(
                f"matchers entries must be one of {list(_MATCHERS)}",
                field="matchers")
        if name in names:
            raise RequestError(f"duplicate matcher {name!r}",
                               field="matchers")
        names.append(name)
    return tuple(names)


# ----------------------------------------------------------------------
# budget clamping
# ----------------------------------------------------------------------
def _clamped(hint, ceiling):
    if ceiling is None:
        return hint
    if hint is None:
        return ceiling
    return min(hint, ceiling)


def make_budget(spec: RequestSpec, config: ServiceConfig) -> Budget:
    """The per-request budget: client hints clamped by server ceilings.

    The deadline is always finite — a request without a hint gets the
    server ceiling, so no admitted request can occupy a worker forever.
    Built at *execution* time (not admission), so queue wait does not
    eat into the query's own deadline; queue sojourn is bounded
    separately by the enqueue deadline.
    """
    hints = spec.budget_hints
    return Budget(
        deadline_ms=_clamped(hints.get("deadline_ms"),
                             config.max_deadline_ms),
        max_rows=_clamped(hints.get("max_rows"), config.max_rows),
        max_groups=_clamped(hints.get("max_groups"), config.max_groups),
        max_interpretations=_clamped(hints.get("max_interpretations"),
                                     config.max_interpretations),
    )


# ----------------------------------------------------------------------
# response envelopes
# ----------------------------------------------------------------------
def _json_value(value):
    """Coerce one cell value to something JSON-serialisable (dates are
    already ISO strings; Intervals and other engine objects stringify)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def star_net_payload(scored) -> dict:
    """One ranked interpretation."""
    net = scored.star_net
    interp = getattr(scored, "interpretation", None)
    payload = {
        "interpretation": (interp.describe() if interp is not None
                           else str(net)),
        "score": round(scored.score, 6),
        "rays": [
            {
                "table": ray.hit_group.table,
                "attribute": ray.hit_group.attribute,
                "values": [_json_value(v)
                           for v in ray.hit_group.values],
                "dimension": ray.dimension,
            }
            for ray in net.rays
        ],
    }
    if interp is not None:
        if interp.attributes:
            payload["attributes"] = [str(gb.ref)
                                     for gb in interp.attributes]
        if interp.measures:
            payload["measures"] = list(interp.measures)
        if interp.modifier.active:
            payload["modifier"] = str(interp.modifier)
        payload["confidence"] = round(interp.confidence, 6)
    if scored.subspace_size is not None:
        payload["subspace_size"] = scored.subspace_size
    return payload


def facets_payload(interface) -> list[dict]:
    """The explore phase's dynamic facets as plain JSON."""
    return [
        {
            "dimension": facet.dimension,
            "attributes": [
                {
                    "table": attr.attribute.ref.table,
                    "column": attr.attribute.ref.column,
                    "score": round(attr.score, 6),
                    "promoted": attr.promoted,
                    "entries": [
                        {
                            "label": entry.label,
                            "value": _json_value(entry.value),
                            "aggregate": entry.aggregate,
                            "score": round(entry.score, 6),
                        }
                        for entry in attr.entries
                    ],
                }
                for attr in facet.attributes
            ],
        }
        for facet in interface.facets
    ]


def diagnostics_payload(diagnostics) -> dict | None:
    """Degradation diagnostics (None when the result was complete)."""
    if diagnostics is None:
        return None
    return diagnostics.as_dict()


def explore_payload(result) -> dict:
    """The `/v1/explore` success envelope body (without request id)."""
    interp = getattr(result, "interpretation", None)
    payload = {
        "interpretation": (interp.describe() if interp is not None
                           else str(result.star_net)),
        "rows": len(result.subspace),
        "total_aggregate": result.total_aggregate,
        "facets": facets_payload(result.interface),
        "partial": result.is_partial,
    }
    diagnostics = diagnostics_payload(result.diagnostics)
    if diagnostics is not None:
        payload["diagnostics"] = diagnostics
    return payload


def differentiate_payload(ranked, budget) -> dict:
    """The `/v1/differentiate` success envelope body."""
    payload = {
        "interpretations": [star_net_payload(s) for s in ranked],
        "partial": budget is not None and budget.truncated,
    }
    if budget is not None and (budget.truncated
                               or getattr(budget, "notes", None)):
        from ..resilience.diagnostics import Diagnostics

        payload["diagnostics"] = Diagnostics.from_budget(budget).as_dict()
    return payload
