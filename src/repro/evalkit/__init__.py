"""Experiment harness reproducing the paper's tables and figures.

Public surface::

    from repro.evalkit import (
        evaluate_ranking, RankingEvaluation, ALL_METHODS,
        evaluate_buckets_online, evaluate_buckets_reseller,
        BucketEvaluation, DEFAULT_BUCKET_COUNTS,
        evaluate_annealing, AnnealingScenario,
        render_table, render_star_nets, render_facets, render_series,
        render_counters,
    )
"""

from .annealing_eval import (
    AnnealingCurve,
    AnnealingScenario,
    basic_series_for_query,
    evaluate_annealing,
)
from .bucket_eval import (
    BucketEvaluation,
    BucketLine,
    DEFAULT_BUCKET_COUNTS,
    RollupCase,
    bucket_error_line,
    case_error,
    evaluate_buckets_online,
    evaluate_buckets_reseller,
    rollup_cases,
)
from .ranking_eval import (
    ALL_METHODS,
    QueryOutcome,
    RankingEvaluation,
    evaluate_ranking,
)
from .report import (
    render_counters,
    render_facets,
    render_series,
    render_star_nets,
    render_table,
)
from .robustness_eval import (
    RobustnessResult,
    corrupt_query,
    evaluate_robustness,
    misspell_keyword,
)

__all__ = [
    "ALL_METHODS",
    "AnnealingCurve",
    "AnnealingScenario",
    "BucketEvaluation",
    "BucketLine",
    "DEFAULT_BUCKET_COUNTS",
    "QueryOutcome",
    "RankingEvaluation",
    "RobustnessResult",
    "RollupCase",
    "basic_series_for_query",
    "bucket_error_line",
    "case_error",
    "corrupt_query",
    "evaluate_annealing",
    "evaluate_buckets_online",
    "evaluate_buckets_reseller",
    "evaluate_ranking",
    "evaluate_robustness",
    "misspell_keyword",
    "render_counters",
    "render_facets",
    "render_series",
    "render_star_nets",
    "render_table",
    "rollup_cases",
]
