"""Figures 5 & 6: bucket count vs. group-by attribute score error.

Protocol (paper §6.4): for a roll-up pair (child level → parent level) and
a numerical candidate attribute, every child value defines one *roll-up
case*: the sub-dataspace DS' selects the child value, RUP(DS') selects its
parent value.  For each case we compute the correlation between the
bucketized aggregate series of DS' and RUP(DS') at various basic-interval
counts and compare against the ground truth (one bucket per distinct
value).  The figure reports the error averaged over all cases.

Error metric: the paper plots an unspecified "error percentage"; we use
the absolute difference between the computed and ground-truth correlation
values, in percentage points of the correlation range ([-1, 1] spans 200
points, so a difference of 0.05 reads as 5%).  The *shape* — rapid decay,
<5% by ~40 buckets, convergence by ~80 — is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.attribute_ranking import ground_truth_series, numerical_series
from ..core.interestingness import pearson_correlation
from ..warehouse.schema import GroupByAttribute, StarSchema
from ..warehouse.subspace import Subspace

DEFAULT_BUCKET_COUNTS: tuple[int, ...] = (5, 10, 20, 40, 80, 160)


@dataclass(frozen=True)
class RollupCase:
    """One roll-up case: DS' (child value) inside RUP(DS') (parent value)."""

    child_value: object
    parent_value: object
    subspace: Subspace
    rollup: Subspace


def rollup_cases(
    schema: StarSchema,
    child_gb: GroupByAttribute,
    parent_gb: GroupByAttribute,
    parent_of: dict,
    min_rows: int = 50,
) -> list[RollupCase]:
    """Enumerate roll-up cases for a child → parent hierarchy pair.

    ``parent_of`` maps child values to parent values (from
    :meth:`StarSchema.parent_map` or equivalent).  Cases with fewer than
    ``min_rows`` fact rows in DS' are skipped: correlations over a handful
    of points are pure noise.
    """
    child_vector = schema.groupby_vector(child_gb)
    parent_vector = schema.groupby_vector(parent_gb)
    by_child: dict = {}
    by_parent: dict = {}
    for rid, (child, parent) in enumerate(zip(child_vector, parent_vector)):
        if child is not None:
            by_child.setdefault(child, []).append(rid)
        if parent is not None:
            by_parent.setdefault(parent, []).append(rid)
    cases = []
    for child_value, rows in sorted(by_child.items(), key=lambda kv: str(kv[0])):
        if len(rows) < min_rows:
            continue
        parent_value = parent_of.get(child_value)
        if parent_value is None or parent_value not in by_parent:
            continue
        cases.append(RollupCase(
            child_value=child_value,
            parent_value=parent_value,
            subspace=Subspace.of(schema, rows, label=str(child_value)),
            rollup=Subspace.of(schema, by_parent[parent_value],
                               label=str(parent_value)),
        ))
    return cases


def case_error(
    case: RollupCase,
    target_gb: GroupByAttribute,
    measure_name: str,
    num_buckets: int,
) -> float | None:
    """Error (correlation percentage points) of one case at one bucket
    count; None when the case is degenerate for this attribute."""
    try:
        truth = ground_truth_series(case.subspace, case.rollup, target_gb,
                                    measure_name)
        approx, _ = numerical_series(case.subspace, case.rollup, target_gb,
                                     measure_name, num_buckets)
    except ValueError:
        return None
    if len(truth.subspace_series) < 2 or len(approx.subspace_series) < 2:
        return None
    truth_corr = pearson_correlation(truth.subspace_series,
                                     truth.rollup_series)
    approx_corr = pearson_correlation(approx.subspace_series,
                                      approx.rollup_series)
    return abs(approx_corr - truth_corr) * 100.0


@dataclass
class BucketLine:
    """One line of Figure 5/6: mean error per bucket count."""

    label: str
    errors: dict[int, float]
    num_cases: int


def bucket_error_line(
    schema: StarSchema,
    cases: Sequence[RollupCase],
    target_gb: GroupByAttribute,
    measure_name: str,
    label: str,
    bucket_counts: Sequence[int] = DEFAULT_BUCKET_COUNTS,
) -> BucketLine:
    """Average the per-case errors into one figure line."""
    errors: dict[int, float] = {}
    used = 0
    for num_buckets in bucket_counts:
        values = [
            err for case in cases
            if (err := case_error(case, target_gb, measure_name,
                                  num_buckets)) is not None
        ]
        used = max(used, len(values))
        errors[num_buckets] = (sum(values) / len(values)) if values else 0.0
    return BucketLine(label=label, errors=errors, num_cases=used)


@dataclass
class BucketEvaluation:
    """All lines of one bucket-convergence figure."""

    lines: list[BucketLine]

    def converged_by(self, num_buckets: int, threshold: float) -> bool:
        """True when every line's error at ``num_buckets`` is below
        ``threshold`` percentage points."""
        return all(line.errors[num_buckets] < threshold
                   for line in self.lines)


def _hierarchy_parent_map(schema: StarSchema, child_gb: GroupByAttribute,
                          parent_gb: GroupByAttribute) -> dict:
    """child value → parent value derived from the fact-aligned vectors."""
    child_vector = schema.groupby_vector(child_gb)
    parent_vector = schema.groupby_vector(parent_gb)
    mapping: dict = {}
    for child, parent in zip(child_vector, parent_vector):
        if child is not None and parent is not None:
            mapping.setdefault(child, parent)
    return mapping


def evaluate_buckets_online(
    schema: StarSchema,
    bucket_counts: Sequence[int] = DEFAULT_BUCKET_COUNTS,
    measure_name: str = "revenue",
    min_rows: int = 50,
) -> BucketEvaluation:
    """Figure 5: YearlyIncome and DealerPrice, each under the
    StateProvince→Country and Subcategory→Category roll-ups (4 lines)."""
    state = schema.groupby_attribute("DimGeography", "StateProvinceName")
    country = schema.groupby_attribute("DimGeography", "CountryRegionName")
    sub = schema.groupby_attribute("DimProductSubcategory",
                                   "ProductSubcategoryName")
    cat = schema.groupby_attribute("DimProductCategory",
                                   "ProductCategoryName")
    income = schema.groupby_attribute("DimCustomer", "YearlyIncome")
    dealer = schema.groupby_attribute("DimProduct", "DealerPrice")

    geo_cases = rollup_cases(
        schema, state, country,
        _hierarchy_parent_map(schema, state, country), min_rows)
    product_cases = rollup_cases(
        schema, sub, cat,
        _hierarchy_parent_map(schema, sub, cat), min_rows)

    lines = [
        bucket_error_line(schema, geo_cases, income, measure_name,
                          "YearlyIncome / State->Country", bucket_counts),
        bucket_error_line(schema, product_cases, income, measure_name,
                          "YearlyIncome / Subcat->Category", bucket_counts),
        bucket_error_line(schema, geo_cases, dealer, measure_name,
                          "DealerPrice / State->Country", bucket_counts),
        bucket_error_line(schema, product_cases, dealer, measure_name,
                          "DealerPrice / Subcat->Category", bucket_counts),
    ]
    return BucketEvaluation(lines)


def evaluate_buckets_reseller(
    schema: StarSchema,
    bucket_counts: Sequence[int] = DEFAULT_BUCKET_COUNTS,
    measure_name: str = "revenue",
    min_rows: int = 50,
) -> BucketEvaluation:
    """Figure 6: AnnualSales, AnnualRevenue, NumberOfEmployees under the
    Subcategory→Category roll-up (3 lines)."""
    sub = schema.groupby_attribute("DimProductSubcategory",
                                   "ProductSubcategoryName")
    cat = schema.groupby_attribute("DimProductCategory",
                                   "ProductCategoryName")
    cases = rollup_cases(
        schema, sub, cat,
        _hierarchy_parent_map(schema, sub, cat), min_rows)
    lines = [
        bucket_error_line(
            schema, cases,
            schema.groupby_attribute("DimReseller", column),
            measure_name, f"{column} / Subcat->Category", bucket_counts)
        for column in ("AnnualSales", "AnnualRevenue", "NumberOfEmployees")
    ]
    return BucketEvaluation(lines)
