"""ASCII renderers for the experiment harness.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.facets import FacetedInterface
from ..core.ranking import ScoredStarNet


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A minimal fixed-width table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] \
        if rows else [[str(h)] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = " | ".join(h.ljust(w) for h, w in zip(map(str, headers),
                                                        widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w)
                                for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_star_nets(ranked: Sequence[ScoredStarNet],
                     limit: int = 5) -> str:
    """Table 1 style: hit groups per star net plus the ranking score."""
    rows = []
    for scored in ranked[:limit]:
        groups = "  &  ".join(str(g) for g in scored.star_net.hit_groups)
        interp = getattr(scored, "interpretation", None)
        if not groups and interp is not None:
            # metadata/pattern-only interpretation: no hit groups to show
            groups = interp.describe()
        rows.append((groups, f"{scored.score:.6f}"))
    return render_table(("star net (hit groups)", "score"), rows)


def render_facets(interface: FacetedInterface,
                  dimensions: Sequence[str] | None = None,
                  max_instances: int = 6) -> str:
    """Table 2 style: selected attributes and instances per dimension."""
    lines = []
    for facet in interface.facets:
        if dimensions is not None and facet.dimension not in dimensions:
            continue
        lines.append(f"{facet.dimension} Dimension")
        for attr in facet.attributes:
            marker = " (promoted)" if attr.promoted else ""
            lines.append(f"  {attr.attribute.ref}{marker}")
            for entry in attr.entries[:max_instances]:
                lines.append(
                    f"    {entry.label:<32s} agg={entry.aggregate:>14.2f} "
                    f"score={entry.score:+.4f}"
                )
    return "\n".join(lines)


def render_series(x_values: Sequence[object],
                  series: Mapping[str, Sequence[float]],
                  x_label: str = "x") -> str:
    """Figure-style output: one row per x value, one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append((x, *(f"{values[i]:.3f}" for values in series.values())))
    return render_table(headers, rows)


def render_counters(engine, metrics=None) -> str:
    """Render a query engine's per-operator counters and cache stats.

    ``engine`` is a :class:`~repro.plan.engine.QueryEngine` (anything with
    ``backend_name``, ``counters`` and ``cache_stats`` duck-types).
    ``metrics`` is an optional session metrics registry whose
    ``kdap.match.*`` counters become a per-matcher ``match:`` line.
    """
    stats = engine.cache_stats
    lines = [
        f"backend: {engine.backend_name}",
        f"plan cache: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.1%} hit rate), {stats.evictions} evictions",
    ]
    if metrics is not None:
        counters = metrics.snapshot().get("counters", {})
        prefix = "kdap.match."
        matched = {name[len(prefix):]: count
                   for name, count in sorted(counters.items())
                   if name.startswith(prefix)}
        if matched:
            lines.append("match: " + ", ".join(
                f"{name}={count}" for name, count in matched.items()))
    tier = getattr(engine, "tier", None)
    if tier is not None:
        snap = tier.snapshot()
        lines.append(
            f"materialize: {snap['views']} views, {snap['hits']} hits "
            f"({snap['rollup_hits']} roll-ups) / {snap['misses']} misses"
            f" ({snap['hit_rate']:.1%} hit rate), "
            f"{snap['refreshes']} refreshes "
            f"({snap['refreshed_rows']} delta rows), "
            f"{snap['rebuilds']} rebuilds"
        )
    fusion = getattr(engine, "fusion", None)
    if fusion is not None and fusion.fused_queries:
        lines.append(
            f"fusion: {fusion.attributes_fused} group-bys in "
            f"{fusion.fused_queries} fused queries "
            f"({fusion.scans_saved} scans saved)"
        )
    resilience = getattr(engine.backend, "resilience", None)
    if resilience is not None:
        lines.append(
            f"resilience: {resilience.retries} retries, "
            f"{resilience.failovers} failovers, "
            f"{resilience.transient_errors} transient errors"
        )
    ops = engine.counters.as_dict()
    if ops:
        rows = [
            (op, s["calls"], s["rows"], s.get("batches", 0),
             s.get("rows_per_batch", 0), s.get("chunks_scanned", 0),
             s.get("chunks_skipped", 0), s.get("morsels", 0),
             f"{s['seconds']:.4f}")
            for op, s in ops.items()
        ]
        lines.append(render_table(
            ["operator", "calls", "rows", "batches", "rows/batch",
             "chunks", "skipped", "morsels", "seconds"], rows))
    return "\n".join(lines)
