"""Figure 7: numerical partitioning quality vs. annealing iterations.

Each sub-figure fixes a keyword query and a numerical attribute domain,
then runs the splitting-point annealing (Algorithm 2) at target interval
counts K ∈ {5, 6, 7}.  The plotted series is the best-so-far error — the
absolute difference between the correlation over the merged intervals and
over the basic intervals — after each iteration, in correlation
percentage points.

The subspace comes from the full KDAP pipeline: the query is run through
differentiate, the top star net is evaluated, and the first hitted
dimension's roll-up supplies the background series (exactly what a real
explore-phase facet build does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.annealing import AnnealingConfig, AnnealingResult, anneal_splits
from ..core.attribute_ranking import numerical_series
from ..core.facets import rollup_subspaces
from ..core.session import KdapSession


@dataclass
class AnnealingCurve:
    """One Figure 7 line: best-so-far error (%) per iteration."""

    label: str
    num_intervals: int
    errors: list[float]
    result: AnnealingResult

    def error_at(self, iteration: int) -> float:
        """Best-so-far error (percentage points) after ``iteration``."""
        idx = min(iteration, len(self.errors)) - 1
        return self.errors[idx]


@dataclass
class AnnealingScenario:
    """One sub-figure: a query, an attribute, and its K-curves."""

    query: str
    attribute: str
    basic_intervals: int
    curves: list[AnnealingCurve]


def basic_series_for_query(
    session: KdapSession,
    query: str,
    attr_table: str,
    attr_column: str,
    num_buckets: int = 40,
    measure_name: str = "revenue",
) -> tuple[list[float], list[float]]:
    """Run differentiate, take the top star net, and return the
    basic-interval series pair (X over DS', Y over RUP(DS'))."""
    ranked = session.differentiate(query, limit=1)
    if not ranked:
        raise ValueError(f"query {query!r} produced no interpretation")
    star_net = ranked[0].star_net
    subspace = star_net.evaluate(session.schema)
    rollup = rollup_subspaces(session.schema, star_net)[0]
    gb = session.schema.groupby_attribute(attr_table, attr_column)
    pair, _ = numerical_series(subspace, rollup, gb, measure_name,
                               num_buckets)
    return list(pair.subspace_series), list(pair.rollup_series)


def evaluate_annealing(
    session: KdapSession,
    query: str,
    attr_table: str,
    attr_column: str,
    interval_counts: Sequence[int] = (5, 6, 7),
    iterations: int = 500,
    num_buckets: int = 40,
    skew_limit: float = 4.0,
    seed: int = 7,
    measure_name: str = "revenue",
) -> AnnealingScenario:
    """Run one Figure 7 sub-figure end to end."""
    x, y = basic_series_for_query(session, query, attr_table, attr_column,
                                  num_buckets, measure_name)
    curves = []
    for k in interval_counts:
        if k > len(x):
            continue
        result = anneal_splits(
            x, y,
            AnnealingConfig(num_intervals=k, skew_limit=skew_limit,
                            iterations=iterations, seed=seed),
        )
        curves.append(AnnealingCurve(
            label=f"K={k}",
            num_intervals=k,
            errors=[e * 100.0 for e in result.error_history],
            result=result,
        ))
    return AnnealingScenario(
        query=query,
        attribute=f"{attr_table}.{attr_column}",
        basic_intervals=len(x),
        curves=curves,
    )
