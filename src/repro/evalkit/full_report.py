"""One-shot regeneration of every paper artifact into a markdown report.

``generate_report`` runs the full experiment matrix — Tables 1/2,
Figure 4 on both warehouses, Figures 5/6/7 — and renders a single
markdown document, so a fresh clone can produce its own EXPERIMENTS-style
record with one call (or ``python -m repro.evalkit.full_report``).
"""

from __future__ import annotations

import time

from ..core.facets import ExploreConfig, build_facets
from ..core.session import KdapSession
from ..datasets import AW_ONLINE_QUERIES, AW_RESELLER_QUERIES
from ..warehouse.schema import StarSchema
from .annealing_eval import evaluate_annealing
from .bucket_eval import (
    DEFAULT_BUCKET_COUNTS,
    evaluate_buckets_online,
    evaluate_buckets_reseller,
)
from .ranking_eval import ALL_METHODS, evaluate_ranking
from .report import render_facets, render_series, render_star_nets


def _md_block(text: str) -> str:
    return "```\n" + text + "\n```\n"


def generate_report(
    online: StarSchema,
    reseller: StarSchema,
    bucket_counts=DEFAULT_BUCKET_COUNTS,
    annealing_iterations: int = 500,
) -> str:
    """Run every experiment and return the full markdown report."""
    started = time.time()
    online_session = KdapSession(online)
    reseller_session = KdapSession(reseller)
    parts: list[str] = ["# KDAP reproduction — regenerated experiment report\n"]
    parts.append(
        f"AW_ONLINE: {online.num_fact_rows} facts; "
        f"AW_RESELLER: {reseller.num_fact_rows} facts.\n"
    )

    # Table 1 -----------------------------------------------------------
    ranked = online_session.differentiate("California Mountain Bikes",
                                          limit=5)
    parts.append("## Table 1 — star nets for 'California Mountain Bikes'\n")
    parts.append(_md_block(render_star_nets(ranked, limit=3)))

    # Table 2 -----------------------------------------------------------
    interface = build_facets(
        online, ranked[0].star_net,
        config=ExploreConfig(top_k_attributes=4, display_intervals=3),
    )
    parts.append("## Table 2 — Product-dimension facet\n")
    parts.append(_md_block(render_facets(interface,
                                         dimensions=["Product"])))

    # Figure 4 ----------------------------------------------------------
    for title, session, queries in (
        ("AW_ONLINE, 50 queries", online_session, AW_ONLINE_QUERIES),
        ("AW_RESELLER replication", reseller_session, AW_RESELLER_QUERIES),
    ):
        evaluation = evaluate_ranking(session, queries)
        ranks = list(range(1, 11))
        series = {m.value: evaluation.curve(m, 10) for m in ALL_METHODS}
        parts.append(f"## Figure 4 — ranking methods ({title})\n")
        parts.append(_md_block(render_series(ranks, series,
                                             x_label="top-x")))

    # Figures 5 & 6 ------------------------------------------------------
    for title, evaluation in (
        ("Figure 5 — bucket convergence (AW_ONLINE)",
         evaluate_buckets_online(online, bucket_counts)),
        ("Figure 6 — bucket convergence (AW_RESELLER)",
         evaluate_buckets_reseller(reseller, bucket_counts)),
    ):
        counts = list(bucket_counts)
        series = {line.label: [line.errors[b] for b in counts]
                  for line in evaluation.lines}
        parts.append(f"## {title}\n")
        parts.append(_md_block(render_series(counts, series,
                                             x_label="buckets")))

    # Figure 7 -----------------------------------------------------------
    scenarios = [
        (online_session, "France Clothing", "DimCustomer", "YearlyIncome"),
        (online_session, "France Accessories", "DimCustomer",
         "YearlyIncome"),
        (reseller_session, "British Columbia", "DimReseller",
         "NumberOfEmployees"),
    ]
    checkpoints = [1, 10, 50, 100, 200, annealing_iterations]
    for session, query, table, column in scenarios:
        scenario = evaluate_annealing(session, query, table, column,
                                      iterations=annealing_iterations)
        series = {c.label: [c.error_at(i) for i in checkpoints]
                  for c in scenario.curves}
        parts.append(
            f"## Figure 7 — annealing ({query!r}, {scenario.attribute})\n")
        parts.append(_md_block(render_series(checkpoints, series,
                                             x_label="iteration")))

    parts.append(f"\n_Generated in {time.time() - started:.1f}s._\n")
    return "\n".join(parts)


def main() -> int:  # pragma: no cover - thin CLI shim
    from ..datasets import build_aw_online, build_aw_reseller

    report = generate_report(build_aw_online(), build_aw_reseller())
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
