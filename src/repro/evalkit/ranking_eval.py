"""Figure 4: evaluation of the four star-net ranking methods.

For each benchmark query we generate candidates once, rank them under each
method, and record the 1-based rank of the first *relevant* star net
(ground truth from :mod:`repro.datasets.queries`).  The figure's curves
plot, for each method, the fraction of queries whose relevant star net
appears within the top-x results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.generation import DEFAULT_CONFIG, GenerationConfig, generate_candidates
from ..core.ranking import RankingMethod, rank_candidates
from ..core.session import KdapSession
from ..datasets.queries import BenchmarkQuery, relevant_rank

ALL_METHODS: tuple[RankingMethod, ...] = (
    RankingMethod.STANDARD,
    RankingMethod.NO_GROUP_SIZE_NORM,
    RankingMethod.NO_GROUP_NUMBER_NORM,
    RankingMethod.BASELINE,
)


@dataclass
class QueryOutcome:
    """Per-query ranks of the first relevant star net, per method."""

    query: BenchmarkQuery
    ranks: dict[RankingMethod, int | None]
    num_candidates: int


@dataclass
class RankingEvaluation:
    """The full Figure 4 dataset."""

    outcomes: list[QueryOutcome]

    @property
    def num_queries(self) -> int:
        return len(self.outcomes)

    def satisfied_at(self, method: RankingMethod, top_x: int) -> float:
        """Fraction of queries whose relevant star net is in the top-x."""
        hits = sum(
            1 for outcome in self.outcomes
            if outcome.ranks[method] is not None
            and outcome.ranks[method] <= top_x
        )
        return hits / max(self.num_queries, 1)

    def curve(self, method: RankingMethod,
              max_rank: int = 10) -> list[float]:
        """The Figure 4 series: satisfied fraction at ranks 1..max_rank."""
        return [self.satisfied_at(method, x) for x in range(1, max_rank + 1)]

    def unsatisfied(self, method: RankingMethod,
                    within: int = 10) -> list[QueryOutcome]:
        """Queries whose relevant star net is missing or ranked too low."""
        return [
            o for o in self.outcomes
            if o.ranks[method] is None or o.ranks[method] > within
        ]

    def by_keyword_count(self, method: RankingMethod,
                         top_x: int = 1) -> dict[int, tuple[int, int]]:
        """Satisfaction broken down by query length.

        Table 3's queries are "evenly distributed in terms of the number
        of keywords contained"; this view shows how ranking quality moves
        with query length.  Returns keyword count → (satisfied, total).
        """
        buckets: dict[int, list[int]] = {}
        for outcome in self.outcomes:
            count = len(outcome.query.text.split())
            rank = outcome.ranks[method]
            hit = 1 if rank is not None and rank <= top_x else 0
            buckets.setdefault(count, []).append(hit)
        return {
            count: (sum(hits), len(hits))
            for count, hits in sorted(buckets.items())
        }


def evaluate_ranking(
    session: KdapSession,
    queries: Sequence[BenchmarkQuery],
    methods: Sequence[RankingMethod] = ALL_METHODS,
    config: GenerationConfig = DEFAULT_CONFIG,
) -> RankingEvaluation:
    """Run the Figure 4 protocol: one candidate generation per query,
    one ranking per method."""
    outcomes: list[QueryOutcome] = []
    for query in queries:
        candidates = generate_candidates(
            session.schema, session.index, query.text, config
        )
        ranks: dict[RankingMethod, int | None] = {}
        for method in methods:
            ranked = rank_candidates(candidates, method)
            ranks[method] = relevant_rank(ranked, query)
        outcomes.append(QueryOutcome(query, ranks, len(candidates)))
    return RankingEvaluation(outcomes)
