"""Typo-robustness experiment (ablation of the fuzzy-matching extension).

Protocol: corrupt each Table 3 query by misspelling its longest keyword
(one random adjacent-character transposition or substitution), then run
the Figure 4 evaluation on the corrupted workload twice — with fuzzy
matching off (the paper's configuration: stemming + prefix only) and on.
The fuzzy index recovers interpretations the exact index loses entirely.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Sequence

from ..core.generation import GenerationConfig
from ..core.ranking import RankingMethod
from ..core.session import KdapSession
from ..datasets.queries import BenchmarkQuery
from .ranking_eval import RankingEvaluation, evaluate_ranking


def misspell_keyword(keyword: str, rng: random.Random) -> str:
    """One edit: transpose two adjacent letters or substitute one.

    Keywords shorter than 5 characters and non-alphabetic keywords are
    returned unchanged (a single edit on a short code changes too much).
    """
    letters = [i for i, ch in enumerate(keyword) if ch.isalpha()]
    if len(letters) < 5:
        return keyword
    if rng.random() < 0.5:
        # transpose two adjacent alphabetic positions
        idx = rng.randrange(len(letters) - 1)
        i, j = letters[idx], letters[idx + 1]
        if j == i + 1 and keyword[i] != keyword[j]:
            chars = list(keyword)
            chars[i], chars[j] = chars[j], chars[i]
            return "".join(chars)
    # substitute one letter with a different one, resampling until the
    # keyword actually changes (case-restoring the replacement could
    # otherwise reproduce the original character)
    i = rng.choice(letters)
    original = keyword[i]
    chars = list(keyword)
    while True:
        replacement = rng.choice(string.ascii_lowercase)
        candidate = replacement.upper() if original.isupper() else replacement
        if candidate != original:
            chars[i] = candidate
            return "".join(chars)


def corrupt_query(query: BenchmarkQuery,
                  rng: random.Random) -> BenchmarkQuery:
    """Misspell the longest keyword of one query (ground truth kept)."""
    keywords = query.text.split()
    target = max(range(len(keywords)), key=lambda i: len(keywords[i]))
    corrupted = list(keywords)
    corrupted[target] = misspell_keyword(keywords[target], rng)
    return BenchmarkQuery(query.qid, " ".join(corrupted),
                          query.interpretations,
                          note=f"corrupted from {query.text!r}")


@dataclass
class RobustnessResult:
    """Satisfaction on the corrupted workload, fuzzy off vs on."""

    corrupted: list[BenchmarkQuery]
    without_fuzzy: RankingEvaluation
    with_fuzzy: RankingEvaluation

    def satisfied(self, fuzzy: bool, top_x: int = 5) -> float:
        evaluation = self.with_fuzzy if fuzzy else self.without_fuzzy
        return evaluation.satisfied_at(RankingMethod.STANDARD, top_x)


def evaluate_robustness(
    session: KdapSession,
    queries: Sequence[BenchmarkQuery],
    seed: int = 17,
) -> RobustnessResult:
    """Run the corrupted workload with and without fuzzy matching."""
    rng = random.Random(seed)
    corrupted = [corrupt_query(q, rng) for q in queries]
    methods = [RankingMethod.STANDARD]
    without = evaluate_ranking(
        session, corrupted, methods=methods,
        config=GenerationConfig(fuzzy_matching=False))
    with_fuzzy = evaluate_ranking(
        session, corrupted, methods=methods,
        config=GenerationConfig(fuzzy_matching=True))
    return RobustnessResult(corrupted, without, with_fuzzy)
