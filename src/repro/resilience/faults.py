"""Deterministic fault injection for chaos testing.

:class:`FaultInjectingBackend` wraps any
:class:`~repro.plan.backends.ExecutionBackend` and misbehaves on a
seeded, reproducible schedule: a configurable error rate, injected
latency, and fail-on-the-Nth-call triggers.  Injected failures are
:class:`~repro.relational.errors.TransientBackendError` by default, so
the :class:`~repro.resilience.resilient.ResilientBackend` retry/failover
ladder treats them exactly like real backend flakiness.

The same seed always produces the same fault schedule, which is what
lets ``tests/resilience/`` and ``benchmarks/chaos_smoke.py`` assert
hard outcomes ("call 3 fails, the retry succeeds") instead of
probabilistic ones.
"""

from __future__ import annotations

import random
import time
from typing import Collection

from ..relational.errors import TransientBackendError


class FaultInjectingBackend:
    """A misbehaving :class:`ExecutionBackend` wrapper (seeded).

    Parameters
    ----------
    inner:
        The real backend serving calls that survive injection.
    error_rate:
        Probability in [0, 1] that any call raises (drawn from the
        seeded RNG, so the schedule is deterministic).
    latency_s:
        Injected delay per call, before the fault decision.
    fail_nth:
        Fail every Nth call (1-based; ``fail_nth=3`` fails calls
        3, 6, 9, ...).
    fail_calls:
        Exact 1-based call numbers to fail (for scripted scenarios like
        "first call fails, retry succeeds").
    error_factory:
        Builds the raised exception from a message; defaults to
        :class:`TransientBackendError`.
    sleep:
        Injectable sleep used for latency injection.
    """

    def __init__(self, inner, error_rate: float = 0.0,
                 latency_s: float = 0.0, fail_nth: int | None = None,
                 fail_calls: Collection[int] = (), seed: int = 0,
                 error_factory=TransientBackendError, sleep=time.sleep):
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")
        self.inner = inner
        self.error_rate = error_rate
        self.latency_s = latency_s
        self.fail_nth = fail_nth
        self.fail_calls = frozenset(fail_calls)
        self.seed = seed
        self._rng = random.Random(seed)
        self._error_factory = error_factory
        self._sleep = sleep
        self.calls = 0
        self.faults_injected = 0

    # -- ExecutionBackend protocol -------------------------------------
    @property
    def name(self) -> str:
        return f"faulty({self.inner.name})"

    @property
    def counters(self):
        return self.inner.counters

    def materialize(self, plan):
        self._maybe_fail("materialize")
        return self.inner.materialize(plan)

    def execute(self, plan):
        self._maybe_fail("execute")
        return self.inner.execute(plan)

    def close(self) -> None:
        """Close is never fault-injected: cleanup must stay reliable."""
        self.inner.close()

    # -- the fault schedule --------------------------------------------
    def _maybe_fail(self, op: str) -> None:
        self.calls += 1
        if self.latency_s:
            self._sleep(self.latency_s)
        # one RNG draw per call, regardless of the other triggers, so the
        # random schedule depends only on (seed, call number)
        draw = self._rng.random() if self.error_rate > 0.0 else 1.0
        triggered = (
            self.calls in self.fail_calls
            or (self.fail_nth is not None
                and self.calls % self.fail_nth == 0)
            or draw < self.error_rate
        )
        if triggered:
            self.faults_injected += 1
            raise self._error_factory(
                f"injected fault on call #{self.calls} ({op}, "
                f"seed={self.seed})")
