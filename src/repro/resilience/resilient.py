"""Retry, backoff, and backend failover.

:class:`ResilientBackend` wraps a primary
:class:`~repro.plan.backends.ExecutionBackend` and makes its failure
modes invisible to the engine: transient errors are retried with
exponential backoff, and when the primary keeps failing the wrapper
fails over to a fallback backend (the ladder the CLI uses is
``sqlite → memory``: the in-memory interpreter evaluates the same
logical plans over the same warehouse, so failover loses no fidelity).

Every retry and failover is counted in :class:`ResilienceStats`, which
``explore --stats`` and the chaos-mode smoke benchmark surface, so the
resilience machinery is observable rather than silently papering over a
misbehaving backend.
"""

from __future__ import annotations

import logging
import sqlite3
import time
from dataclasses import dataclass, field

from ..obs.metrics import current_registry
from ..obs.tracer import current_tracer
from ..relational.errors import (
    BackendUnavailableError,
    TransientBackendError,
)
from .budget import current_budget

logger = logging.getLogger(__name__)

#: Error types retried by default: explicitly transient engine errors
#: plus sqlite-level operational failures (locked database, I/O).
DEFAULT_TRANSIENT = (TransientBackendError, sqlite3.OperationalError)


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry one backend."""

    max_attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    transient: tuple[type[BaseException], ...] = DEFAULT_TRANSIENT

    def delays(self):
        """Backoff delay before each retry (``max_attempts - 1`` values)."""
        delay = self.base_delay_s
        for _ in range(max(self.max_attempts - 1, 0)):
            yield delay
            delay *= self.multiplier


@dataclass
class ResilienceStats:
    """Counters describing how hard the wrapper had to work."""

    retries: int = 0
    failovers: int = 0
    transient_errors: int = 0
    last_error: str = ""
    errors_by_type: dict[str, int] = field(default_factory=dict)

    def note_error(self, exc: BaseException) -> None:
        self.transient_errors += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        name = type(exc).__name__
        self.errors_by_type[name] = self.errors_by_type.get(name, 0) + 1
        current_registry().counter(
            "kdap.resilience.transient_errors").inc()

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot (chaos-mode CI artifact)."""
        return {
            "retries": self.retries,
            "failovers": self.failovers,
            "transient_errors": self.transient_errors,
            "last_error": self.last_error,
            "errors_by_type": dict(sorted(self.errors_by_type.items())),
        }


class ResilientBackend:
    """An :class:`ExecutionBackend` that retries and fails over.

    Parameters
    ----------
    primary:
        The preferred backend.
    fallback:
        A backend instance *or* zero-argument factory built lazily on
        first failover; None disables failover.
    policy:
        Retry/backoff configuration.
    sleep:
        Injectable sleep (tests and the chaos harness pass a no-op).

    Once a failover happens the wrapper stays on the fallback for the
    rest of its life — flapping back to a backend that just failed
    repeatedly would trade a known-good answer for more retries.
    """

    def __init__(self, primary, fallback=None,
                 policy: RetryPolicy | None = None, sleep=time.sleep):
        self.primary = primary
        self._fallback_source = fallback
        self.policy = policy or RetryPolicy()
        self.resilience = ResilienceStats()
        self._sleep = sleep
        self.active = primary
        self._closed = False

    # -- ExecutionBackend protocol -------------------------------------
    @property
    def name(self) -> str:
        return f"resilient({self.active.name})"

    @property
    def counters(self):
        """The *active* backend's per-operator counters (post-failover
        these are the fallback's)."""
        return self.active.counters

    def materialize(self, plan):
        return self._call("materialize", plan)

    def execute(self, plan):
        return self._call("execute", plan)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.primary.close()
        if self.active is not self.primary:
            self.active.close()

    # -- retry / failover ladder ---------------------------------------
    def _call(self, op: str, plan):
        last_error = self._attempt_all(self.active, op, plan)
        if isinstance(last_error, Exception):
            fallback = self._promote_fallback()
            if fallback is not None:
                last_error = self._attempt_all(fallback, op, plan)
                if not isinstance(last_error, Exception):
                    return last_error[0]
            raise BackendUnavailableError(
                f"{op} failed after {self.policy.max_attempts} attempts "
                f"and {'failover' if fallback is not None else 'no fallback'}"
            ) from last_error
        return last_error[0]

    def _attempt_all(self, backend, op: str, plan):
        """Run ``op`` with retries; a 1-tuple result on success, the last
        transient error on failure (non-transient errors propagate).

        Every attempt — including the first — runs inside a
        ``retry.attempt`` span, so a traced query shows the whole retry
        ladder as child spans with error tags under the originating
        query span (worker threads included: the tracer rides the same
        copied context the budget does).
        """
        tracer = current_tracer()
        delays = list(self.policy.delays()) + [None]
        last: Exception | None = None
        for attempt, delay in enumerate(delays, 1):
            with tracer.span("retry.attempt", backend=backend.name,
                             op=op, attempt=attempt) as span:
                try:
                    return (getattr(backend, op)(plan),)
                except self.policy.transient as exc:
                    span.set_error(exc)
                    self.resilience.note_error(exc)
                    last = exc
            if delay is None:
                break
            if not self._deadline_allows(delay):
                break
            self.resilience.retries += 1
            current_registry().counter("kdap.resilience.retries").inc()
            logger.debug("retrying %s on %s after %s: %s",
                         op, backend.name, delay, last)
            self._sleep(delay)
        return last

    def _deadline_allows(self, delay_s: float) -> bool:
        """False when backing off would sleep past the ambient deadline —
        better to fail over (or give up) immediately than doze through
        the caller's deadline."""
        budget = current_budget()
        if budget is None:
            return True
        remaining = budget.remaining_ms()
        return remaining is None or remaining > delay_s * 1000.0

    def _promote_fallback(self):
        """Switch to the fallback backend (building it on first use)."""
        if self.active is not self.primary:
            return None  # already failed over; nowhere further to go
        source = self._fallback_source
        if source is None:
            return None
        with current_tracer().span("backend.failover",
                                   from_backend=self.primary.name) as span:
            fallback = source() if callable(source) else source
            span.set_tag("to_backend", fallback.name)
        self.resilience.failovers += 1
        current_registry().counter("kdap.resilience.failovers").inc()
        logger.warning("failing over from %s to %s",
                       self.primary.name, fallback.name)
        self.active = fallback
        return fallback


def create_resilient_backend(schema, backend: str = "sqlite",
                             policy: RetryPolicy | None = None,
                             sleep=time.sleep) -> ResilientBackend:
    """The standard failover ladder for a warehouse: ``backend`` as the
    primary with an in-memory fallback (none when the primary already is
    the in-memory interpreter)."""
    from ..plan.backends import InMemoryBackend, create_backend

    primary = create_backend(schema, backend)
    fallback = (None if primary.name == "memory"
                else (lambda: InMemoryBackend(schema)))
    return ResilientBackend(primary, fallback=fallback, policy=policy,
                            sleep=sleep)
