"""Resilient query execution: budgets, deadlines, retry/failover, chaos.

KDAP is interactive — every keyword query must return *something* within
interactive latency, even when an interpretation explodes combinatorially
or a backend misbehaves.  This package provides the machinery:

* :class:`Budget` / :func:`budget_scope` — an ambient per-query contract
  (wall-clock deadline, max rows scanned, max groups, max
  interpretations) checked cooperatively by the plan layer, both
  execution backends, star-net enumeration, and facet building;
* :class:`Diagnostics` / :class:`TruncationEvent` — the record a partial
  result carries explaining what was truncated and why;
* :class:`ResilientBackend` — retry with exponential backoff plus
  automatic failover (sqlite → memory), with observable counters;
* :class:`FaultInjectingBackend` — seeded, deterministic fault injection
  for the chaos test suite and smoke benchmark.

Public surface::

    from repro.resilience import (
        Budget, budget_scope, current_budget,
        Diagnostics, TruncationEvent,
        ResilientBackend, RetryPolicy, ResilienceStats,
        create_resilient_backend,
        FaultInjectingBackend,
    )
"""

from .budget import (
    Budget,
    budget_scope,
    charge_groups,
    charge_rows,
    check_deadline,
    current_budget,
)
from .diagnostics import Diagnostics, TruncationEvent
from .faults import FaultInjectingBackend
from .resilient import (
    DEFAULT_TRANSIENT,
    ResilienceStats,
    ResilientBackend,
    RetryPolicy,
    create_resilient_backend,
)

__all__ = [
    "Budget",
    "DEFAULT_TRANSIENT",
    "Diagnostics",
    "FaultInjectingBackend",
    "ResilienceStats",
    "ResilientBackend",
    "RetryPolicy",
    "TruncationEvent",
    "budget_scope",
    "charge_groups",
    "charge_rows",
    "check_deadline",
    "create_resilient_backend",
    "current_budget",
]
