"""Degradation diagnostics: *what* was truncated, *why*, and *how much*.

When a query runs under a :class:`~repro.resilience.budget.Budget`, every
layer that gives up work cooperatively (candidate enumeration, facet
building, subspace materialisation) records a :class:`TruncationEvent`
instead of raising to the user.  :class:`Diagnostics` snapshots those
events together with the budget's consumption counters, and rides on the
partial :class:`~repro.core.session.ExploreResult` so callers — and the
CLI — can explain a degraded answer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TruncationEvent:
    """One place where work was cut short.

    ``stage`` names the layer (``"generation"``, ``"subspace"``,
    ``"facet:Customer"``, ...), ``reason`` the exhausted limit
    (``"deadline"``, ``"rows"``, ``"groups"``, ``"interpretations"``),
    ``detail`` a human-readable elaboration.
    """

    stage: str
    reason: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"{self.stage}: {self.reason}"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass(frozen=True)
class Diagnostics:
    """How a budgeted query was degraded, and how much it consumed."""

    partial: bool
    truncations: tuple[TruncationEvent, ...]
    rows_scanned: int
    groups_seen: int
    interpretations: int
    elapsed_ms: float
    limits: tuple[tuple[str, float], ...]
    """The budget's configured limits as sorted ``(name, value)`` pairs."""
    notes: tuple[str, ...] = ()
    """Informational per-query notes that do not mark the result partial
    (e.g. a keyword no interpretation matcher accepted)."""

    @staticmethod
    def from_budget(budget) -> "Diagnostics":
        """Snapshot a budget's events and consumption counters."""
        return Diagnostics(
            partial=bool(budget.events),
            truncations=tuple(budget.events),
            rows_scanned=budget.rows_scanned,
            groups_seen=budget.groups_seen,
            interpretations=budget.interpretations,
            elapsed_ms=budget.elapsed_ms(),
            limits=tuple(sorted(budget.limits().items())),
            notes=tuple(getattr(budget, "notes", ())),
        )

    def as_dict(self) -> dict:
        """JSON-serialisable form (for the chaos-mode counter artifact)."""
        return {
            "partial": self.partial,
            "truncations": [
                {"stage": t.stage, "reason": t.reason, "detail": t.detail}
                for t in self.truncations
            ],
            "rows_scanned": self.rows_scanned,
            "groups_seen": self.groups_seen,
            "interpretations": self.interpretations,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "limits": dict(self.limits),
            **({"notes": list(self.notes)} if self.notes else {}),
        }

    def describe(self) -> list[str]:
        """One line per truncation plus a consumption summary (CLI)."""
        lines = [str(event) for event in self.truncations]
        lines.extend(f"note: {note}" for note in self.notes)
        lines.append(
            f"scanned {self.rows_scanned} rows, {self.groups_seen} groups, "
            f"{self.interpretations} interpretations in "
            f"{self.elapsed_ms:.0f} ms"
        )
        return lines
