"""Resource budgets and deadlines, checked cooperatively across the engine.

A :class:`Budget` bounds one query's work by contract rather than by
luck: a wall-clock deadline plus caps on rows scanned, groups built, and
interpretations enumerated.  The budget is *ambient* — installed with
:func:`budget_scope`, read with :func:`current_budget` — so deep layers
(backend operator loops, star-net enumeration, facet building) can check
it without every call signature threading a budget through.

Checks are cooperative and operator-grained: each charge either succeeds
or raises a typed :class:`~repro.relational.errors.BudgetExceeded` /
:class:`~repro.relational.errors.DeadlineExceeded`.  Layers that can
degrade gracefully catch the error at their own loop boundary, record a
:class:`~repro.resilience.diagnostics.TruncationEvent` via
:meth:`Budget.record_truncation`, and return what they have; anything
escaping to :class:`~repro.core.session.KdapSession` is converted into a
partial result there.

The module-level helpers (:func:`check_deadline`, :func:`charge_rows`,
:func:`charge_groups`) are no-ops when no budget is active, so the
unbudgeted hot path pays one context-variable read per operator.

Scopes **nest safely**: entering a scope while another budget is already
ambient (a per-request budget inside a process-level ceiling, as the
service layer does) clamps the inner budget to the *minimum* of the two
contracts — its deadline cannot outlive the outer scope's remaining
time, and its row/group/interpretation caps cannot exceed the outer
scope's remaining allowance.  On exit the outer budget absorbs the inner
scope's consumption and truncation events, so sibling request scopes
draw down one shared outer pool.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar

from ..obs.metrics import current_registry
from ..relational.errors import BudgetExceeded, DeadlineExceeded
from .diagnostics import TruncationEvent

_ACTIVE: ContextVar["Budget | None"] = ContextVar("kdap_budget",
                                                  default=None)


class Budget:
    """Consumable resource limits for one query (all limits optional).

    Parameters
    ----------
    deadline_ms:
        Wall-clock deadline, measured from construction.
    max_rows:
        Cap on rows produced by plan operators (work done, not result
        size: a row flowing through two operators counts twice).
    max_groups:
        Cap on groups built by partition/aggregate operators.
    max_interpretations:
        Cap on candidate star nets enumerated during differentiation.
    clock:
        Injectable monotonic clock (tests pin time).
    """

    def __init__(self, deadline_ms: float | None = None,
                 max_rows: int | None = None,
                 max_groups: int | None = None,
                 max_interpretations: int | None = None,
                 clock=time.monotonic):
        self.deadline_ms = deadline_ms
        self.max_rows = max_rows
        self.max_groups = max_groups
        self.max_interpretations = max_interpretations
        self._clock = clock
        self._started = clock()
        # one budget may be charged from several engine worker threads
        # (parallel differentiate); charges must stay read-check atomic
        self._lock = threading.Lock()
        self.rows_scanned = 0
        self.groups_seen = 0
        self.interpretations = 0
        self.events: list[TruncationEvent] = []
        self.notes: list[str] = []

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def elapsed_ms(self) -> float:
        return (self._clock() - self._started) * 1000.0

    def remaining_ms(self) -> float | None:
        """Milliseconds until the deadline (None without one)."""
        if self.deadline_ms is None:
            return None
        return self.deadline_ms - self.elapsed_ms()

    def check_deadline(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceeded` once the deadline has passed."""
        remaining = self.remaining_ms()
        if remaining is not None and remaining < 0:
            raise DeadlineExceeded(
                f"deadline of {self.deadline_ms:g} ms exceeded "
                f"({self.elapsed_ms():.0f} ms elapsed)", stage=stage)

    # ------------------------------------------------------------------
    # consumable charges
    # ------------------------------------------------------------------
    def charge_rows(self, rows: int, stage: str = "scan") -> None:
        """Count operator output rows; raise once over ``max_rows``."""
        with self._lock:
            self.rows_scanned += rows
            over = (self.max_rows is not None
                    and self.rows_scanned > self.max_rows)
            scanned = self.rows_scanned
        if over:
            raise BudgetExceeded(
                f"row budget of {self.max_rows} exceeded "
                f"({scanned} rows scanned)",
                stage=stage, reason="rows")

    def charge_groups(self, groups: int, stage: str = "aggregate") -> None:
        """Count groups built; raise once over ``max_groups``."""
        with self._lock:
            self.groups_seen += groups
            over = (self.max_groups is not None
                    and self.groups_seen > self.max_groups)
            seen = self.groups_seen
        if over:
            raise BudgetExceeded(
                f"group budget of {self.max_groups} exceeded "
                f"({seen} groups built)",
                stage=stage, reason="groups")

    def charge_interpretations(self, count: int = 1,
                               stage: str = "generation") -> None:
        """Count enumerated candidates; raise once over the cap."""
        with self._lock:
            self.interpretations += count
            over = (self.max_interpretations is not None
                    and self.interpretations > self.max_interpretations)
        if over:
            raise BudgetExceeded(
                f"interpretation budget of {self.max_interpretations} "
                f"exceeded", stage=stage, reason="interpretations")

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def record_truncation(self, stage: str, reason: str,
                          detail: str = "") -> None:
        """Note that ``stage`` gave up work because of ``reason``.

        Every truncation is also counted per cause in the ambient
        metrics registry (``kdap.truncations.<reason>``), so budget and
        deadline degradation shows up in metrics snapshots without
        anyone holding on to the partial result's diagnostics.
        """
        with self._lock:
            self.events.append(TruncationEvent(stage, reason, detail))
        registry = current_registry()
        registry.counter(f"kdap.truncations.{reason}").inc()
        registry.counter("kdap.truncations.total").inc()

    def add_note(self, note: str) -> None:
        """Attach an informational diagnostics note (non-fatal, does not
        mark the result partial): e.g. a keyword no matcher accepted.
        Duplicate notes collapse."""
        with self._lock:
            if note not in self.notes:
                self.notes.append(note)

    @property
    def truncated(self) -> bool:
        """True once any layer recorded a truncation."""
        return bool(self.events)

    # ------------------------------------------------------------------
    # scope nesting
    # ------------------------------------------------------------------
    def clamp_to(self, outer: "Budget") -> None:
        """Tighten this budget to ``outer``'s remaining allowance.

        Called by :func:`budget_scope` when this budget is installed
        inside an already-active scope: every ceiling becomes the
        minimum of what this budget asked for and what the outer
        contract still permits (its deadline's remaining milliseconds;
        its caps minus what it has already consumed).  A nested scope
        can therefore never out-spend the scope it runs inside.
        """
        with outer._lock:
            consumed = (outer.rows_scanned, outer.groups_seen,
                        outer.interpretations)
        self.deadline_ms = _min_limit(self.deadline_ms,
                                      outer.remaining_ms())
        self.max_rows = _min_limit(
            self.max_rows, _remaining(outer.max_rows, consumed[0]))
        self.max_groups = _min_limit(
            self.max_groups, _remaining(outer.max_groups, consumed[1]))
        self.max_interpretations = _min_limit(
            self.max_interpretations,
            _remaining(outer.max_interpretations, consumed[2]))

    def absorb(self, child: "Budget") -> None:
        """Account a nested scope's consumption against this budget.

        Pure bookkeeping — no limit is re-checked here (the child was
        clamped on entry, so it could not have spent more than this
        budget's remaining allowance by more than one charge's
        overshoot).  Truncation events carry over so the outer scope's
        diagnostics describe the whole nested execution.
        """
        with child._lock:
            rows, groups, interps = (child.rows_scanned, child.groups_seen,
                                     child.interpretations)
            events = list(child.events)
            notes = list(child.notes)
        with self._lock:
            self.rows_scanned += rows
            self.groups_seen += groups
            self.interpretations += interps
            self.events.extend(events)
            for note in notes:
                if note not in self.notes:
                    self.notes.append(note)

    def limits(self) -> dict[str, float]:
        """The configured (non-None) limits by name."""
        pairs = {
            "deadline_ms": self.deadline_ms,
            "max_rows": self.max_rows,
            "max_groups": self.max_groups,
            "max_interpretations": self.max_interpretations,
        }
        return {name: value for name, value in pairs.items()
                if value is not None}

    def __repr__(self) -> str:
        limits = ", ".join(f"{k}={v:g}" for k, v in self.limits().items())
        return f"Budget({limits or 'unlimited'})"


def _min_limit(a: float | None, b: float | None) -> float | None:
    """Minimum of two optional ceilings (None = unlimited)."""
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _remaining(limit: int | None, consumed: int) -> int | None:
    """What is left of an optional cap after ``consumed`` charges."""
    return None if limit is None else limit - consumed


# ----------------------------------------------------------------------
# ambient scope
# ----------------------------------------------------------------------
@contextmanager
def budget_scope(budget: Budget | None):
    """Install ``budget`` as the ambient budget for the duration.

    ``None`` is accepted (and installs nothing) so callers can write one
    ``with budget_scope(maybe_budget):`` regardless of whether a budget
    was requested.

    When a *different* budget is already ambient, the new budget is
    clamped to the outer one's remaining allowance on entry
    (:meth:`Budget.clamp_to`) and its consumption is absorbed into the
    outer budget on exit (:meth:`Budget.absorb`) — nesting a request
    scope inside a process-level scope takes the minimum of the two
    contracts rather than silently shadowing the outer one.
    Re-installing the budget that is already ambient (the session's
    explore path does this) stays a plain no-op shadow.
    """
    if budget is None:
        yield None
        return
    outer = _ACTIVE.get()
    nested = outer is not None and outer is not budget
    if nested:
        budget.clamp_to(outer)
    token = _ACTIVE.set(budget)
    try:
        yield budget
    finally:
        _ACTIVE.reset(token)
        if nested:
            outer.absorb(budget)


def current_budget() -> Budget | None:
    """The ambient budget, or None outside any :func:`budget_scope`."""
    return _ACTIVE.get()


def check_deadline(stage: str = "") -> None:
    """Deadline check against the ambient budget (no-op without one)."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.check_deadline(stage)


def charge_rows(rows: int, stage: str = "scan") -> None:
    """Charge rows to the ambient budget (no-op without one)."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.check_deadline(stage)
        budget.charge_rows(rows, stage)


def charge_groups(groups: int, stage: str = "aggregate") -> None:
    """Charge groups to the ambient budget (no-op without one)."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.check_deadline(stage)
        budget.charge_groups(groups, stage)
