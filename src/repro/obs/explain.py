"""EXPLAIN ANALYZE: logical plans annotated with actual execution stats.

:func:`profile_plan` joins a plan tree against the per-operator spans a
traced execution produced (each backend tags operator spans with the
node's :func:`~repro.obs.tracer.plan_digest`), yielding an
:class:`ExplainNode` tree where every node carries its actual calls,
rows, batches, and inclusive seconds — the paper-reproduction analogue
of a SQL engine's ``EXPLAIN ANALYZE``.

The module is deliberately duck-typed over plan nodes (``kind``,
``child``, ``keys`` ...) so the observability layer stays below the plan
layer in the import graph: ``repro.plan`` imports ``repro.obs``, never
the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tracer import Tracer, plan_digest


@dataclass
class OpProfile:
    """Actuals accumulated for one plan node across a trace."""

    calls: int = 0
    rows: int = 0
    batches: int = 0
    seconds: float = 0.0
    cache_hits: int = 0
    materialized: int = 0
    pushed_to_sql: bool = False
    chunks_scanned: int = 0
    chunks_skipped: int = 0
    morsels: int = 0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls, "rows": self.rows,
            "batches": self.batches, "seconds": round(self.seconds, 6),
            "cache_hits": self.cache_hits,
            "materialized": self.materialized,
            "pushed_to_sql": self.pushed_to_sql,
            "chunks_scanned": self.chunks_scanned,
            "chunks_skipped": self.chunks_skipped,
            "morsels": self.morsels,
        }


@dataclass
class ExplainNode:
    """One plan node with its label, digest, actuals, and children."""

    kind: str
    detail: str
    fp: str
    profile: OpProfile
    children: list["ExplainNode"] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "detail": self.detail, "fp": self.fp,
            **self.profile.as_dict(),
            "children": [child.as_dict() for child in self.children],
        }


def _describe(node) -> str:
    """A one-line human label for a plan node (duck-typed)."""
    kind = node.kind
    if kind == "Scan":
        return node.table
    if kind == "RowSet":
        return f"{len(node.rows)} pinned rows of {node.table}"
    if kind == "SemiJoin":
        via = "->".join(node.path.fk_names) or "fact"
        return (f"{node.source_table}.{node.column} IN "
                f"[{len(node.values)} values] via {via}")
    if kind == "Filter":
        if node.predicate is not None:
            return str(node.predicate)
        return f"{node.attr} IN [{len(node.values)} values]"
    if kind == "Partition":
        return ", ".join(str(key) for key in node.keys)
    if kind == "GroupAggregate":
        return f"{node.aggregate}({node.measure_sql})"
    if kind == "MultiGroupAggregate":
        keys = ", ".join(str(key) for key in node.keys)
        return f"{node.aggregate}({node.measure_sql}) by [{keys}]"
    return repr(node)


def _children(node):
    child = getattr(node, "child", None)
    return [child] if child is not None else []


def collect_profiles(tracer: Tracer) -> dict[str, OpProfile]:
    """Per-node actuals keyed by plan digest, from a trace's spans.

    ``op.*`` spans (backends) contribute calls/rows/batches/seconds;
    ``plan.materialize`` / ``plan.execute`` spans tagged ``cached=True``
    (the engine's cache-hit markers) contribute cache hits; spans tagged
    ``materialized=True`` mark aggregates the materialization tier
    answered from mergeable states without a scan; spans tagged
    ``pushed_to_sql`` mark nodes the sqlite backend compiled away into
    one statement rather than executing individually.
    """
    profiles: dict[str, OpProfile] = {}
    for span in tracer.spans():
        fp = span.tags.get("fp")
        if fp is None:
            continue
        profile = profiles.setdefault(fp, OpProfile())
        if span.name.startswith("op."):
            if span.tags.get("pushed_to_sql"):
                profile.pushed_to_sql = True
                profile.calls += 1
            else:
                profile.calls += 1
                profile.rows += int(span.tags.get("rows", 0) or 0)
                profile.batches += int(span.tags.get("batches", 0) or 0)
                profile.chunks_scanned += int(
                    span.tags.get("chunks_scanned", 0) or 0)
                profile.chunks_skipped += int(
                    span.tags.get("chunks_skipped", 0) or 0)
                profile.morsels += int(span.tags.get("morsels", 0) or 0)
                profile.seconds += span.duration_s
        elif span.tags.get("cached"):
            profile.cache_hits += 1
        elif span.tags.get("materialized"):
            profile.materialized += 1
    return profiles


def profile_plan(plan, tracer: Tracer) -> ExplainNode:
    """The plan tree annotated with the actuals recorded in ``tracer``."""
    profiles = collect_profiles(tracer)

    def build(node) -> ExplainNode:
        fp = plan_digest(node)
        return ExplainNode(
            kind=node.kind, detail=_describe(node), fp=fp,
            profile=profiles.get(fp, OpProfile()),
            children=[build(child) for child in _children(node)],
        )

    return build(plan)


def render_plan(root: ExplainNode) -> str:
    """ASCII tree: one node per line with its actuals.

    Nodes the sqlite backend folded into a single SQL statement render
    with their call count and a ``[in SQL]`` marker (their time is the
    statement's, attributed to the plan root).
    """
    lines: list[str] = []

    def emit(node: ExplainNode, prefix: str, is_last: bool,
             is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        stats = node.profile
        if stats.pushed_to_sql:
            actual = f"(calls={stats.calls} [in SQL])"
        elif stats.calls or stats.cache_hits or stats.materialized:
            actual = (f"(calls={stats.calls} rows={stats.rows} "
                      f"batches={stats.batches} "
                      f"seconds={stats.seconds:.6f}")
            if stats.chunks_scanned or stats.chunks_skipped:
                actual += (f" chunks={stats.chunks_scanned}"
                           f"(+{stats.chunks_skipped} skipped)")
            if stats.morsels:
                actual += f" morsels={stats.morsels}"
            if stats.cache_hits:
                actual += f" cache_hits={stats.cache_hits}"
            if stats.materialized:
                actual += f" materialized={stats.materialized}"
            actual += ")"
        else:
            actual = "(never executed)"
        lines.append(f"{prefix}{connector}{node.kind} {node.detail}  "
                     f"{actual}")
        child_prefix = prefix + ("" if is_root
                                 else ("   " if is_last else "│  "))
        for index, child in enumerate(node.children):
            emit(child, child_prefix, index == len(node.children) - 1,
                 False)

    emit(root, "", True, True)
    return "\n".join(lines)


def render_span_tree(tree: list[dict], max_children: int = 10,
                     min_ms: float = 0.0) -> str:
    """Indented phase breakdown of a span tree (``Tracer.to_tree()``).

    Each line shows the span name, inclusive milliseconds, and a compact
    tag suffix; sibling lists longer than ``max_children`` are elided
    with a count so operator-heavy traces stay readable.
    """
    lines: list[str] = []

    def emit(span: dict, depth: int) -> None:
        ms = span.get("seconds", 0.0) * 1000.0
        if depth and ms < min_ms:
            return
        tags = span.get("tags", {})
        shown = {k: v for k, v in tags.items()
                 if k not in ("fp",) and v is not None}
        suffix = ""
        if shown:
            suffix = "  [" + " ".join(f"{k}={v}" for k, v
                                      in sorted(shown.items())) + "]"
        lines.append(f"{'  ' * depth}{span['name']}  "
                     f"{ms:.2f} ms{suffix}")
        children = span.get("children", [])
        for child in children[:max_children]:
            emit(child, depth + 1)
        if len(children) > max_children:
            lines.append(f"{'  ' * (depth + 1)}"
                         f"... (+{len(children) - max_children} more "
                         "spans)")

    for root in tree:
        emit(root, 0)
    return "\n".join(lines)


@dataclass
class ExplainResult:
    """Everything ``KdapSession.explain`` / ``repro explain`` reports."""

    query: str
    interpretation: str
    backend: str
    elapsed_s: float
    plan: ExplainNode
    """The star net's materialisation plan, annotated with actuals."""
    total_plan: ExplainNode | None
    """The whole-subspace total aggregate plan (None when skipped)."""
    tracer: Tracer
    """The full trace of the explained execution (phases + operators)."""
    match: dict | None = None
    """Matcher-chain breakdown from the interpretation front end: enabled
    matchers, per-matcher candidate/accepted counters, and keywords no
    matcher accepted."""

    def render(self) -> str:
        lines = [
            f"query: {self.query!r}",
            f"interpretation: {self.interpretation}",
            f"backend: {self.backend}, total {self.elapsed_s * 1000:.1f} "
            "ms",
        ]
        if self.match:
            lines += ["", "matcher breakdown:"]
            matchers = self.match.get("matchers", ())
            if matchers:
                lines.append(f"  matchers: {', '.join(matchers)}")
            counters = self.match.get("counters", {})
            for name in sorted(counters):
                lines.append(f"  kdap.match.{name}: {counters[name]}")
            for keyword in self.match.get("unmatched", ()):
                lines.append(f"  unmatched keyword: {keyword!r}")
            for keyword in self.match.get("skipped", ()):
                lines.append(f"  skipped stopword: {keyword!r}")
        lines += [
            "",
            "subspace plan (actual):",
            render_plan(self.plan),
        ]
        if self.total_plan is not None:
            lines += ["", "total-aggregate plan (actual):",
                      render_plan(self.total_plan)]
        lines += ["", "phase breakdown:",
                  render_span_tree(self.tracer.to_tree())]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "interpretation": self.interpretation,
            "backend": self.backend,
            "elapsed_s": round(self.elapsed_s, 6),
            "plan": self.plan.as_dict(),
            "total_plan": (self.total_plan.as_dict()
                           if self.total_plan is not None else None),
            "spans": self.tracer.to_tree(),
            "match": self.match,
        }
