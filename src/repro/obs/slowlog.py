"""Threshold-triggered slow-query log.

Interactive OLAP lives or dies on tail latency; a flat p95 number says a
query was slow but not *why*.  :class:`SlowQueryLog` keeps, for every
query whose explore phase overruns a configurable threshold, the whole
attribution package: the keyword query, the chosen interpretation, the
materialisation plan's fingerprint digest, and the query's span tree.

The log is a bounded ring (oldest entries drop first) so a long-lived
session cannot grow it without bound, and is thread-safe because the
ray-prefetch pool means query work spans threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SlowQueryRecord:
    """One over-threshold query, with everything needed to explain it."""

    query: str
    interpretation: str
    plan_fp: str
    elapsed_ms: float
    threshold_ms: float
    span_tree: dict | None = None
    """The query's span tree (None when tracing was disabled)."""
    request_id: str | None = None
    """The serving request id — also the trace id a persisted trace file
    is named after, so ``/v1/slowlogz`` entries join against
    ``/v1/eventz`` and ``--trace-dir`` (None outside the service)."""
    wall_time: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "interpretation": self.interpretation,
            "plan_fp": self.plan_fp,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "threshold_ms": self.threshold_ms,
            "span_tree": self.span_tree,
            "request_id": self.request_id,
            "wall_time": round(self.wall_time, 3),
        }

    def describe(self) -> str:
        return (f"{self.elapsed_ms:.0f} ms (threshold "
                f"{self.threshold_ms:g} ms): {self.query!r} -> "
                f"{self.interpretation} [plan {self.plan_fp}]")


class SlowQueryLog:
    """Bounded record of queries slower than ``threshold_ms``."""

    def __init__(self, threshold_ms: float, capacity: int = 64):
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self._records: deque[SlowQueryRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.observed = 0
        self.recorded = 0

    def observe(self, query: str, interpretation: str, plan_fp: str,
                elapsed_ms: float, span_tree: dict | None = None,
                request_id: str | None = None) -> bool:
        """Record the query if it overran the threshold; True when kept."""
        with self._lock:
            self.observed += 1
            if elapsed_ms <= self.threshold_ms:
                return False
            self.recorded += 1
            self._records.append(SlowQueryRecord(
                query=query, interpretation=interpretation,
                plan_fp=plan_fp, elapsed_ms=elapsed_ms,
                threshold_ms=self.threshold_ms, span_tree=span_tree,
                request_id=request_id))
            return True

    @property
    def records(self) -> tuple[SlowQueryRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot (``--stats-json`` includes it)."""
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "observed": self.observed,
                "recorded": self.recorded,
                "records": [record.as_dict()
                            for record in self._records],
            }

    def __len__(self) -> int:
        return len(self._records)
