"""The ``repro top`` live dashboard: scrape, fold, render.

``repro top`` is deliberately a *client* of the service's own telemetry
surface — it polls ``GET /v1/statz`` (JSON) and ``GET /v1/metricz``
(Prometheus text, read back through the strict parser) exactly the way
an external monitoring stack would, so running it doubles as an
end-to-end check that the exposed surface is sufficient to operate the
service.  Nothing here reaches into server internals.

The module splits cleanly for testing: :func:`fetch_sample` does the two
HTTP GETs, :func:`render_dashboard` is a pure ``(statz, metrics) → str``
function, and :func:`run_top` is the loop that alternates them with an
ANSI home-and-clear between frames.  Tests exercise the renderer on
canned snapshots without a server.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from .promexport import parse_prometheus

CLEAR = "\x1b[H\x1b[2J"


def fetch_sample(base_url: str, timeout: float = 5.0) -> dict:
    """One scrape: ``{"statz": dict, "metrics": families}``."""
    base = base_url.rstrip("/")
    with urllib.request.urlopen(f"{base}/v1/statz",
                                timeout=timeout) as response:
        statz = json.loads(response.read().decode("utf-8"))
    with urllib.request.urlopen(f"{base}/v1/metricz",
                                timeout=timeout) as response:
        metrics = parse_prometheus(response.read().decode("utf-8"))
    return {"statz": statz, "metrics": metrics}


def _metric_value(metrics: dict, name: str) -> float | None:
    family = metrics.get(name)
    if not family:
        return None
    for sample_name, _labels, value in family["samples"]:
        if sample_name == name:
            return value
    return None


def _fmt(value, digits: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.{digits}f}"
    return str(int(value))


def _bar(fraction: float | None, width: int = 20) -> str:
    if fraction is None:
        return "." * width
    filled = max(0, min(width, round(fraction * width)))
    return "#" * filled + "." * (width - filled)


def render_dashboard(statz: dict, metrics: dict,
                     events: list | None = None) -> str:
    """One dashboard frame from a statz snapshot + parsed metricz."""
    lines: list[str] = []
    state = statz.get("state", "?")
    uptime = statz.get("uptime_s")
    # statz["workers"] is the per-worker detail list; the fleet size
    # lives in the config echo
    workers = statz.get("config", {}).get("workers")
    if workers is None and isinstance(statz.get("workers"), list):
        workers = len(statz["workers"])
    lines.append(f"kdap top — state={state} uptime={_fmt(uptime)}s "
                 f"workers={_fmt(workers)}")

    queue_depth = _metric_value(metrics, "kdap_runtime_queue_depth")
    in_flight = _metric_value(metrics, "kdap_runtime_in_flight")
    utilization = _metric_value(metrics,
                                "kdap_runtime_worker_utilization")
    shed_rate = _metric_value(metrics, "kdap_runtime_shed_rate")
    lines.append(f"  load   queue={_fmt(queue_depth)} "
                 f"in_flight={_fmt(in_flight)} "
                 f"util=[{_bar(utilization)}] {_fmt((utilization or 0) * 100)}% "
                 f"shed_rate={_fmt(shed_rate, 3)}")

    counters = statz.get("service", {}).get("counters", {})
    if counters:
        def status_total(family: str) -> int:
            prefix = f"kdap.service.status.{family}"
            return sum(value for key, value in counters.items()
                       if key.startswith(prefix))

        shed = (counters.get("kdap.service.shed.queue_full", 0)
                + counters.get("kdap.service.shed.queue_timeout", 0))
        lines.append(f"  reqs   admitted="
                     f"{counters.get('kdap.service.admitted', 0)} "
                     f"ok={status_total('2')} 4xx={status_total('4')} "
                     f"5xx={status_total('5')} shed={shed}")

    slo = statz.get("slo")
    if slo:
        policy = slo.get("policy", {})
        burning = slo.get("burning")
        banner = "BURNING" if burning else "ok"
        lines.append(f"  slo    target_p95={policy.get('target_p95_ms')}ms "
                     f"budget={policy.get('error_budget')} "
                     f"state={banner} alerts={slo.get('alerts', 0)}")
        for label in ("short", "long"):
            window = slo.get("windows", {}).get(label)
            if window:
                lines.append(
                    f"         {label:<5} ({_fmt(window.get('window_s'))}s) "
                    f"n={window.get('total', 0)} "
                    f"bad={window.get('bad', 0)} "
                    f"burn={_fmt(window.get('burn_rate'), 2)} "
                    f"p95={_fmt(window.get('p95_ms'))}ms")

    sampling = statz.get("sampling")
    if sampling:
        persisted = sampling.get("persisted", {})
        lines.append(
            f"  trace  considered={sampling.get('considered', 0)} "
            f"kept={sampling.get('persisted_total', 0)} "
            f"(err={persisted.get('error', 0)} "
            f"trunc={persisted.get('truncated', 0)} "
            f"slow={persisted.get('slow', 0)} "
            f"head={persisted.get('head', 0)}) "
            f"dropped={sampling.get('dropped', 0)}")

    event_stats = statz.get("events")
    if event_stats:
        lines.append(f"  events emitted={event_stats.get('emitted', 0)} "
                     f"retained={event_stats.get('retained', 0)} "
                     f"dropped={event_stats.get('dropped', 0)}")
    for event in (events or [])[-5:]:
        detail = " ".join(
            f"{key}={value}" for key, value in sorted(event.items())
            if key not in ("seq", "ts", "kind")
            and value not in (None, "", [], {}))
        lines.append(f"    #{event.get('seq')} {event.get('kind')} "
                     f"{detail}".rstrip())

    slowlog = statz.get("slowlog")
    if slowlog:
        lines.append(f"  slow   observed={slowlog.get('observed', 0)} "
                     f"retained={slowlog.get('retained', 0)} "
                     f"threshold={slowlog.get('threshold_ms')}ms")
    return "\n".join(lines)


def run_top(base_url: str, interval_s: float = 2.0,
            iterations: int | None = None, out=None,
            clock=time.sleep, fetch=fetch_sample) -> int:
    """Poll-and-render loop; returns a CLI exit code.

    ``iterations=None`` runs until interrupted; tests pass a count plus
    a stub ``fetch``.  A scrape failure renders an error frame and keeps
    polling — the server restarting must not kill the operator's view.
    """
    import sys
    out = out if out is not None else sys.stdout
    frame = 0
    while iterations is None or frame < iterations:
        frame += 1
        try:
            sample = fetch(base_url)
            body = render_dashboard(sample["statz"], sample["metrics"],
                                    sample.get("events"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            body = f"kdap top — scrape failed: {exc}"
        out.write(CLEAR + body + "\n")
        out.flush()
        if iterations is not None and frame >= iterations:
            break
        try:
            clock(interval_s)
        except KeyboardInterrupt:
            break
    return 0
