"""Prometheus text-format exposition over :mod:`repro.obs.metrics`.

Three things live here, all stdlib-only:

* :func:`render_prometheus` — the ``GET /v1/metricz`` body: every
  counter, gauge, and histogram from one *or several* registries in the
  Prometheus text exposition format (version 0.0.4).  Per-worker
  registries are **rolled up first** — counters sum, gauges sum, and
  histograms merge per-bucket (:func:`merge_histogram_states`) — so one
  scrape sees fleet totals, with cumulative ``_bucket{le="..."}`` series
  derived from the fixed-boundary histogram counts.
* :func:`parse_prometheus` — a strict parser for the same format.  It
  exists for the round-trip test (what we expose must be exactly
  re-readable) and for ``repro top``, which scrapes its own server the
  way Prometheus would.
* :class:`RuntimeStatsPoller` — a background thread that periodically
  publishes the service runtime's operational gauges (queue depth,
  in-flight requests, worker utilization, interval shed rate) into the
  server registry, so ``/v1/metricz`` carries load state even between
  requests.

Metric names translate mechanically: dotted instrument names become
underscore-separated (``kdap.explore.seconds`` →
``kdap_explore_seconds``); no labels are synthesised because the rollup
already collapsed the per-worker dimension.
"""

from __future__ import annotations

import math
import re
import threading
import time

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$")
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>'
                    r'(?:[^"\\]|\\.)*)"$')


def metric_name(dotted: str) -> str:
    """A dotted instrument name as a legal Prometheus metric name."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", dotted)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    """Floats in the shortest exact form the parser reads back."""
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# rollup
# ----------------------------------------------------------------------
def merge_histogram_states(states) -> dict | None:
    """Elementwise merge of :meth:`Histogram.state` dicts.

    States must share bucket boundaries (they do in practice — every
    worker builds the same instruments from the same code path); a
    boundary mismatch raises rather than silently mis-merging counts.
    """
    merged: dict | None = None
    for state in states:
        if merged is None:
            merged = {"boundaries": state["boundaries"],
                      "counts": list(state["counts"]),
                      "count": state["count"], "sum": state["sum"],
                      "min": state["min"], "max": state["max"]}
            continue
        if state["boundaries"] != merged["boundaries"]:
            raise ValueError("histogram boundary mismatch in rollup")
        merged["counts"] = [a + b for a, b in zip(merged["counts"],
                                                  state["counts"])]
        merged["count"] += state["count"]
        merged["sum"] += state["sum"]
        for key, pick in (("min", min), ("max", max)):
            if state[key] is not None:
                merged[key] = (state[key] if merged[key] is None
                               else pick(merged[key], state[key]))
    return merged


def rollup_registries(registries) -> dict:
    """Counters summed, gauges summed, histogram states merged.

    Returns ``{"counters": {name: int}, "gauges": {name: float},
    "histograms": {name: state}}`` across every registry, the shared
    shape consumed by both the text exposition and ``/v1/statz``.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histogram_states: dict[str, list] = {}
    for registry in registries:
        for name, instrument in registry.instruments().items():
            if isinstance(instrument, Counter):
                counters[name] = counters.get(name, 0) + instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = gauges.get(name, 0.0) + instrument.value
            elif isinstance(instrument, Histogram):
                histogram_states.setdefault(name, []).append(
                    instrument.state())
    histograms = {name: merge_histogram_states(states)
                  for name, states in histogram_states.items()}
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------
def render_prometheus(registries: "MetricsRegistry | list") -> str:
    """The Prometheus text-format exposition of one or more registries."""
    if isinstance(registries, MetricsRegistry):
        registries = [registries]
    rolled = rollup_registries(registries)
    lines: list[str] = []
    for name in sorted(rolled["counters"]):
        exposed = metric_name(name)
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed} {_format_value(rolled['counters'][name])}")
    for name in sorted(rolled["gauges"]):
        exposed = metric_name(name)
        lines.append(f"# TYPE {exposed} gauge")
        lines.append(f"{exposed} {_format_value(rolled['gauges'][name])}")
    for name in sorted(rolled["histograms"]):
        state = rolled["histograms"][name]
        exposed = metric_name(name)
        lines.append(f"# TYPE {exposed} histogram")
        cumulative = 0
        for boundary, count in zip(state["boundaries"], state["counts"]):
            cumulative += count
            lines.append(f'{exposed}_bucket{{le="{_format_value(boundary)}"'
                         f"}} {cumulative}")
        lines.append(f'{exposed}_bucket{{le="+Inf"}} {state["count"]}')
        lines.append(f"{exposed}_sum {_format_value(state['sum'])}")
        lines.append(f"{exposed}_count {state['count']}")
    return "\n".join(lines) + "\n"


PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


# ----------------------------------------------------------------------
# strict parsing
# ----------------------------------------------------------------------
def _parse_value(text: str, line_no: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"line {line_no}: invalid sample value {text!r}") from None


def _parse_labels(raw: str, line_no: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    for part in filter(None, (p.strip() for p in raw.split(","))):
        match = _LABEL.match(part)
        if match is None:
            raise ValueError(f"line {line_no}: malformed label {part!r}")
        value = match.group("value")
        value = (value.replace(r"\\", "\\").replace(r"\"", '"')
                 .replace(r"\n", "\n"))
        labels[match.group("key")] = value
    return labels


def parse_prometheus(text: str) -> dict[str, dict]:
    """Strictly parse Prometheus text format into metric families.

    Returns ``{family_name: {"type": str, "samples": [(sample_name,
    labels_dict, value), ...]}}``.  Histogram series (``_bucket`` /
    ``_sum`` / ``_count``) group under their family name.  Any line that
    is not a comment, a blank, or a well-formed sample raises
    ``ValueError`` — this parser is a contract check, not a scraper that
    shrugs.
    """
    families: dict[str, dict] = {}
    suffixes = ("_bucket", "_sum", "_count")
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] not in ("TYPE", "HELP"):
                raise ValueError(
                    f"line {line_no}: unknown comment {parts[1]!r}")
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    raise ValueError(
                        f"line {line_no}: malformed TYPE line")
                name = parts[2]
                if name in families:
                    raise ValueError(
                        f"line {line_no}: duplicate TYPE for {name}")
                families[name] = {"type": parts[3], "samples": []}
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample "
                             f"{line!r}")
        sample_name = match.group("name")
        family = sample_name
        if family not in families:
            for suffix in suffixes:
                if sample_name.endswith(suffix) \
                        and sample_name[: -len(suffix)] in families:
                    family = sample_name[: -len(suffix)]
                    break
        if family not in families:
            raise ValueError(f"line {line_no}: sample {sample_name!r} "
                             "precedes its TYPE declaration")
        labels = _parse_labels(match.group("labels") or "", line_no)
        value = _parse_value(match.group("value"), line_no)
        families[family]["samples"].append((sample_name, labels, value))
    return families


# ----------------------------------------------------------------------
# runtime stats poller
# ----------------------------------------------------------------------
class RuntimeStatsPoller:
    """Publishes service runtime gauges on a background interval.

    Request-path instruments only move when requests move; an idle or
    saturated server is invisible between them.  The poller closes that
    gap: every ``interval_s`` it reads the service's queue and pool and
    sets four gauges in the server registry —

    * ``kdap.runtime.queue_depth`` — admission queue occupancy;
    * ``kdap.runtime.in_flight`` — requests executing right now;
    * ``kdap.runtime.worker_utilization`` — in-flight / worker count;
    * ``kdap.runtime.shed_rate`` — shed fraction of arrivals since the
      previous poll (0.0 when nothing arrived).

    ``poll_once`` is public so tests (and the service's statz handler)
    can force a fresh sample without waiting out the interval.  The
    thread is daemonised and joins on ``stop`` — a wedged poller must
    never block a drain.
    """

    SHED_COUNTERS = ("kdap.service.shed.queue_full",
                     "kdap.service.shed.queue_timeout")
    ARRIVAL_COUNTERS = SHED_COUNTERS + ("kdap.service.admitted",
                                        "kdap.service.rejected.draining")

    def __init__(self, service, interval_s: float = 0.5):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.service = service
        self.interval_s = interval_s
        self.polls = 0
        self._last_arrivals = 0
        self._last_shed = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    def _counter_total(self, names) -> int:
        registry = self.service.registry
        return sum(registry.counter(name).value for name in names)

    def poll_once(self) -> dict:
        """Take one sample and publish the gauges; returns the sample."""
        service = self.service
        registry = service.registry
        with self._lock:
            self.polls += 1
            queue_depth = len(service.queue)
            in_flight = service.pool.in_flight
            workers = max(service.config.workers, 1)
            arrivals = self._counter_total(self.ARRIVAL_COUNTERS)
            shed = self._counter_total(self.SHED_COUNTERS)
            delta_arrivals = arrivals - self._last_arrivals
            delta_shed = shed - self._last_shed
            self._last_arrivals, self._last_shed = arrivals, shed
        sample = {
            "queue_depth": float(queue_depth),
            "in_flight": float(in_flight),
            "worker_utilization": round(in_flight / workers, 4),
            "shed_rate": (round(delta_shed / delta_arrivals, 4)
                          if delta_arrivals > 0 else 0.0),
        }
        for name, value in sample.items():
            registry.gauge(f"kdap.runtime.{name}").set(value)
        registry.counter("kdap.runtime.polls").inc()
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.poll_once()

    def start(self) -> None:
        if self._thread is not None:
            return
        self.poll_once()  # gauges exist from the first scrape onward
        self._thread = threading.Thread(target=self._run,
                                        name="kdap-runtime-poller",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
