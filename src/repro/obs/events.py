"""Bounded structured event log for request-lifecycle telemetry.

A fleet operator cannot grep latency histograms: when a request was shed
or came back partial, the question is *what happened to that request* —
and the answer has to be machine-readable, bounded in memory, and cheap
enough to leave on in production.  :class:`EventLog` is a thread-safe
ring buffer of :class:`Event` records (newest win; the ring never grows
past its capacity) with an optional append-only JSONL file sink, so a
long-lived server keeps the recent tail queryable in memory while a
collector can follow the full stream on disk.

The service layer emits one event per lifecycle transition — ``admitted``
/ ``shed`` / ``rejected`` / ``started`` / ``finished`` / ``errored`` /
``aborted`` — each carrying the request id (which doubles as the trace
id: the tail sampler names persisted traces after it), the worker that
ran it, the interpretation fingerprint, the budget outcome with
truncation reasons, and any matcher notes.  The SLO tracker emits
``slo.burn`` / ``slo.recovered`` transitions into the same log, so one
``GET /v1/eventz?n=K`` (or ``repro events tail``) interleaves load
shedding, degraded answers, and objective burns on a single timeline.

Events are dicts on the wire, not a schema class per kind: kinds evolve
faster than envelopes, and the consumers (the ``/v1/eventz`` endpoint,
``repro top``'s event pane, CI artifacts) only ever treat fields as
opaque JSON.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque

logger = logging.getLogger(__name__)


class Event:
    """One structured telemetry event (immutable after ``emit``)."""

    __slots__ = ("seq", "wall_time", "kind", "fields")

    def __init__(self, seq: int, wall_time: float, kind: str,
                 fields: dict):
        self.seq = seq
        self.wall_time = wall_time
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> dict:
        return {"seq": self.seq, "ts": round(self.wall_time, 6),
                "kind": self.kind, **self.fields}

    def describe(self) -> str:
        """One log-style line (``repro events tail`` default rendering)."""
        detail = " ".join(f"{key}={value}" for key, value
                          in sorted(self.fields.items())
                          if value not in (None, "", [], {}))
        return f"#{self.seq} {self.kind} {detail}".rstrip()

    def __repr__(self) -> str:
        return f"Event({self.seq}, {self.kind!r})"


class EventLog:
    """Bounded ring of :class:`Event` records with an optional JSONL sink.

    ``emit`` is O(1) under one lock: sequence assignment, ring append
    (the deque drops the oldest entry itself), and — when a sink path was
    given — one buffered JSONL write.  Sink failures are logged once and
    disable the sink rather than failing the request path: telemetry
    must never take down serving.

    ``clock`` is injectable so tests pin wall time.
    """

    def __init__(self, capacity: int = 512, sink_path: str | None = None,
                 clock=time.time):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.sink_path = sink_path
        self._clock = clock
        self._events: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.emitted = 0
        self._sink = None
        if sink_path is not None:
            self._sink = open(sink_path, "a", encoding="utf-8")

    def emit(self, kind: str, /, **fields) -> Event:
        """Append one event (and mirror it to the sink, if any).

        ``kind`` is positional-only so field names can never collide
        with it; the envelope keys ``seq``/``ts``/``kind`` are reserved
        (a field by those names would be shadowed in ``as_dict``) — the
        service uses ``op`` for the request kind.
        """
        with self._lock:
            self._seq += 1
            self.emitted += 1
            event = Event(self._seq, self._clock(), kind, fields)
            self._events.append(event)
            if self._sink is not None:
                try:
                    self._sink.write(
                        json.dumps(event.as_dict(), sort_keys=True,
                                   default=str) + "\n")
                except (OSError, ValueError) as exc:
                    logger.warning("event sink %s failed (%s); sink "
                                   "disabled", self.sink_path, exc)
                    self._close_sink()
        return event

    def tail(self, n: int = 50) -> list[dict]:
        """The newest ``n`` events, oldest first (JSON-serialisable)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        with self._lock:
            events = list(self._events)
        return [event.as_dict() for event in events[-n:]] if n else []

    @property
    def dropped(self) -> int:
        """Events the ring has overwritten (emitted minus retained)."""
        with self._lock:
            return self.emitted - len(self._events)

    def snapshot(self) -> dict:
        """Log-level accounting (the events themselves ride ``tail``)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._events),
                "emitted": self.emitted,
                "dropped": self.emitted - len(self._events),
                "sink": self.sink_path,
            }

    def _close_sink(self) -> None:
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:
                pass
            self._sink = None

    def close(self) -> None:
        """Flush and close the sink (the in-memory ring stays readable)."""
        with self._lock:
            self._close_sink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
