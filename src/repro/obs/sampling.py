"""Tail-based trace sampling: keep full traces only for requests that matter.

Head sampling (decide before the request runs) cannot keep what an
operator actually needs — the slow request, the 502, the budget-truncated
partial — because those are only known *at the end*.  The service layer
therefore buffers every request's spans in an in-memory
:class:`~repro.obs.tracer.Tracer` (cheap: spans are slotted objects, and
the tree dies with the request) and asks :class:`TailSampler` **after**
the request finished whether the full trace is worth persisting:

* **errored** requests (any 5xx, including 504 deadline expiries) are
  always persisted — a trace of the failure is the whole point;
* **budget-truncated** requests (200 + ``partial``) are persisted — a
  degraded answer deserves the same attribution as a failed one;
* **slow** requests over ``slow_ms`` are persisted — tail latency is
  what interactive OLAP lives or dies by;
* a deterministic **1-in-N head sample** of everything else keeps a
  baseline of healthy-fast traces for comparison (the very first request
  is always a head sample, so a single-request smoke test still gets its
  trace file).

Everything else is dropped, so ``--trace-dir`` stays usable under
sustained load: disk grows with incidents and the head-sample rate, not
with traffic.  Decisions are counted per reason (``kdap.trace.*`` when a
registry is attached) so ``/v1/statz`` can prove the policy is actually
dropping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .metrics import MetricsRegistry


@dataclass(frozen=True)
class SamplingPolicy:
    """The persist-or-drop policy knobs.

    ``slow_ms`` is the latency above which a trace is always kept;
    ``head_n`` keeps one in every N otherwise-healthy traces (0 disables
    head sampling entirely, 1 keeps everything).
    """

    slow_ms: float = 1_000.0
    head_n: int = 10

    def __post_init__(self) -> None:
        if self.slow_ms < 0:
            raise ValueError("slow_ms must be non-negative")
        if self.head_n < 0:
            raise ValueError("head_n must be non-negative")


@dataclass(frozen=True)
class SamplingDecision:
    """Persist or drop, and why (``reason`` is None on drop)."""

    persist: bool
    reason: str | None = None


class TailSampler:
    """Applies a :class:`SamplingPolicy` to finished requests.

    Thread-safe: workers finish requests concurrently and the head-sample
    counter must tick exactly once per considered request.
    """

    #: Persist reasons, in decision priority order.
    REASONS = ("error", "truncated", "slow", "head")

    def __init__(self, policy: SamplingPolicy | None = None,
                 registry: MetricsRegistry | None = None):
        self.policy = policy or SamplingPolicy()
        self.registry = registry
        self._lock = threading.Lock()
        self.considered = 0
        self.persisted = {reason: 0 for reason in self.REASONS}
        self.dropped = 0

    def decide(self, *, status: int, elapsed_ms: float,
               truncated: bool = False) -> SamplingDecision:
        """The persist decision for one finished request."""
        policy = self.policy
        with self._lock:
            self.considered += 1
            head = (policy.head_n > 0
                    and (self.considered - 1) % policy.head_n == 0)
            if status >= 500:
                reason = "error"
            elif truncated:
                reason = "truncated"
            elif elapsed_ms > policy.slow_ms:
                reason = "slow"
            elif head:
                reason = "head"
            else:
                reason = None
            if reason is None:
                self.dropped += 1
            else:
                self.persisted[reason] += 1
        if self.registry is not None:
            if reason is None:
                self.registry.counter("kdap.trace.dropped").inc()
            else:
                self.registry.counter(f"kdap.trace.sampled.{reason}").inc()
        return SamplingDecision(reason is not None, reason)

    def snapshot(self) -> dict:
        """JSON-serialisable accounting for ``/v1/statz``."""
        with self._lock:
            persisted = dict(self.persisted)
            return {
                "policy": {"slow_ms": self.policy.slow_ms,
                           "head_n": self.policy.head_n},
                "considered": self.considered,
                "persisted": persisted,
                "persisted_total": sum(persisted.values()),
                "dropped": self.dropped,
            }
