"""Named counters, gauges, and fixed-boundary histograms.

A :class:`MetricsRegistry` owns instruments addressed by dotted name
(``kdap.plan.cache.hits``, ``kdap.explore.seconds``) and snapshots them
as one JSON-serialisable dict.  Histograms use fixed bucket boundaries
(geometric latency buckets by default) so p50/p95/p99 summaries cost
O(buckets), never a sorted sample reservoir — the registry can sit on
the query path of a long-lived process without growing.

Two registries matter in practice:

* the **process-wide default** (:data:`DEFAULT_REGISTRY`) — where
  instrumented layers record when nothing else is installed;
* a **per-session registry** — each
  :class:`~repro.core.session.KdapSession` owns one and installs it with
  :func:`metrics_scope` around its operations, so concurrent sessions
  never smear each other's latency distributions.

Deep layers always write through :func:`current_registry`, which
resolves the ambient scope first and falls back to the default.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar


def _latency_boundaries() -> tuple[float, ...]:
    """Geometric bucket edges from 100 µs to ~2 minutes (~13% wide)."""
    edges = []
    edge = 0.0001
    while edge < 120.0:
        edges.append(round(edge, 7))
        edge *= 1.25
    return tuple(edges)


LATENCY_BOUNDARIES_S = _latency_boundaries()
"""Default histogram boundaries, tuned for query latencies in seconds."""


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A named value that goes up and down (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """Fixed-boundary histogram with bucket-interpolated quantiles.

    ``boundaries`` are the upper edges of the finite buckets; one
    overflow bucket catches everything larger.  Quantiles interpolate
    linearly inside the bucket holding the target rank, clamped by the
    observed min/max, so small-sample summaries stay sane (a single
    observation reports itself as every percentile).
    """

    __slots__ = ("name", "boundaries", "_counts", "_lock",
                 "count", "total", "min", "max")

    def __init__(self, name: str,
                 boundaries: tuple[float, ...] = LATENCY_BOUNDARIES_S):
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError("boundaries must be a sorted non-empty "
                             "sequence")
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self._counts = [0] * (len(self.boundaries) + 1)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.boundaries)
        while lo < hi:  # first boundary >= value (bisect_left)
            mid = (lo + hi) // 2
            if self.boundaries[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def quantile(self, q: float) -> float | None:
        """The q-quantile estimated from bucket counts (None when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        with self._lock:
            if not self.count:
                return None
            counts = list(self._counts)
            count, lo_clamp, hi_clamp = self.count, self.min, self.max
        target = q * count
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                lower = self.boundaries[index - 1] if index else 0.0
                upper = (self.boundaries[index]
                         if index < len(self.boundaries) else hi_clamp)
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(fraction, 0.0)
                return min(max(estimate, lo_clamp), hi_clamp)
            cumulative += bucket_count
        return hi_clamp

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def state(self) -> dict:
        """Raw per-bucket counts plus extremes, taken under the lock.

        The Prometheus exporter consumes this — cumulative ``_bucket``
        series need the raw counts, and rolling worker registries up
        into one fleet view means merging these states elementwise
        (:func:`repro.obs.promexport.merge_histogram_states`).
        """
        with self._lock:
            return {
                "boundaries": self.boundaries,
                "counts": tuple(self._counts),
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
            }

    def summary(self) -> dict:
        """Count/sum/extremes plus p50/p95/p99 (JSON-serialisable)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Instruments by name, created on first use, snapshotted as JSON.

    A name permanently binds to its first instrument type; asking for
    the same name as a different type raises (silent shadowing would
    split a metric across instruments).
    """

    def __init__(self):
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = self._instruments[name] = factory(name)
        return instrument

    def counter(self, name: str) -> Counter:
        instrument = self._get(name, Counter)
        if not isinstance(instrument, Counter):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(instrument).__name__}, not a Counter")
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._get(name, Gauge)
        if not isinstance(instrument, Gauge):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(instrument).__name__}, not a Gauge")
        return instrument

    def histogram(self, name: str,
                  boundaries: tuple[float, ...] = LATENCY_BOUNDARIES_S
                  ) -> Histogram:
        instrument = self._get(
            name, lambda n: Histogram(n, boundaries=boundaries))
        if not isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(instrument).__name__}, not a Histogram")
        return instrument

    def instruments(self) -> dict:
        """Name → live instrument, as a point-in-time copy of the map.

        The instruments themselves stay live (they keep counting); the
        Prometheus exporter walks this to build its exposition.
        """
        with self._lock:
            return dict(self._instruments)

    def snapshot(self) -> dict:
        """Every instrument's current value, sorted by name."""
        with self._lock:
            instruments = dict(self._instruments)
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.value
            else:
                out["histograms"][name] = instrument.summary()
        return out

    def reset(self) -> None:
        """Drop every instrument (names unbind too)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)


DEFAULT_REGISTRY = MetricsRegistry()
"""The process-wide registry used outside any :func:`metrics_scope`."""

_ACTIVE: ContextVar[MetricsRegistry | None] = ContextVar(
    "kdap_metrics", default=None)


def current_registry() -> MetricsRegistry:
    """The ambient registry, or the process-wide default."""
    registry = _ACTIVE.get()
    return registry if registry is not None else DEFAULT_REGISTRY


@contextmanager
def metrics_scope(registry: MetricsRegistry | None):
    """Route :func:`current_registry` to ``registry`` for the duration
    (``None`` installs nothing)."""
    if registry is None:
        yield None
        return
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


def runs_summary(runs_s, name: str = "bench") -> dict:
    """Histogram-based p50/p95 of a benchmark's run times (seconds).

    The benchmark suite records these alongside medians in
    ``BENCH_kdap.json`` so CI can watch tail latency, not just the
    midpoint.
    """
    histogram = Histogram(name)
    for run in runs_s:
        histogram.observe(run)
    return {
        "p50_s": round(histogram.quantile(0.50), 6),
        "p95_s": round(histogram.quantile(0.95), 6),
    }
