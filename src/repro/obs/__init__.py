"""Observability: tracing, metrics, EXPLAIN ANALYZE, slow-query log.

This package is the bottom of the import graph — it depends only on the
standard library, and every other layer (plan, backends, resilience,
session) emits into it:

* :class:`Tracer` / :func:`tracing_scope` — hierarchical spans
  propagated through context variables (surviving worker threads and
  retry ladders), exportable as a tree or Chrome ``trace_event`` JSON;
* :class:`MetricsRegistry` — named counters, gauges, and fixed-boundary
  histograms with p50/p95/p99 summaries; one process-wide default plus
  per-session isolated registries via :func:`metrics_scope`;
* :func:`profile_plan` / :class:`ExplainResult` — logical plans
  annotated per-node with actual calls/rows/batches/seconds pulled from
  span data (``KdapSession.explain`` / ``repro explain``);
* :class:`SlowQueryLog` — threshold-triggered ring of slow queries with
  interpretation, plan fingerprint, request id, and span tree;
* :class:`EventLog` — bounded ring of structured request-lifecycle
  events (JSONL sink optional), the machine-readable operator timeline;
* :class:`TailSampler` — persist-or-drop decisions for full traces
  after a request ends (errored/truncated/slow/1-in-N head sample);
* :func:`render_prometheus` / :func:`parse_prometheus` /
  :class:`RuntimeStatsPoller` — Prometheus text exposition of merged
  per-worker registries plus background runtime gauges;
* :class:`SloTracker` — rolling-window latency/error objective with
  multi-window burn-rate alerting.

Public surface::

    from repro.obs import (
        Tracer, Span, NOOP, NOOP_SPAN, tracing_scope, current_tracer,
        current_span, op_span, plan_digest,
        MetricsRegistry, Counter, Gauge, Histogram, DEFAULT_REGISTRY,
        metrics_scope, current_registry, runs_summary,
        ExplainNode, ExplainResult, OpProfile, profile_plan,
        render_plan, render_span_tree,
        SlowQueryLog, SlowQueryRecord,
        Event, EventLog,
        SamplingPolicy, SamplingDecision, TailSampler,
        render_prometheus, parse_prometheus, metric_name,
        merge_histogram_states, rollup_registries, RuntimeStatsPoller,
        PROMETHEUS_CONTENT_TYPE,
        SloPolicy, SloTracker,
    )
"""

from .tracer import (
    NOOP,
    NOOP_SPAN,
    Span,
    Tracer,
    current_request_id,
    current_span,
    current_tracer,
    op_span,
    plan_digest,
    request_scope,
    tracing_scope,
)
from .metrics import (
    DEFAULT_REGISTRY,
    LATENCY_BOUNDARIES_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    metrics_scope,
    runs_summary,
)
from .explain import (
    ExplainNode,
    ExplainResult,
    OpProfile,
    collect_profiles,
    profile_plan,
    render_plan,
    render_span_tree,
)
from .slowlog import SlowQueryLog, SlowQueryRecord
from .events import Event, EventLog
from .sampling import SamplingDecision, SamplingPolicy, TailSampler
from .promexport import (
    PROMETHEUS_CONTENT_TYPE,
    RuntimeStatsPoller,
    merge_histogram_states,
    metric_name,
    parse_prometheus,
    render_prometheus,
    rollup_registries,
)
from .slo import SloPolicy, SloTracker

__all__ = [
    "Counter",
    "DEFAULT_REGISTRY",
    "Event",
    "EventLog",
    "ExplainNode",
    "ExplainResult",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDARIES_S",
    "MetricsRegistry",
    "NOOP",
    "NOOP_SPAN",
    "OpProfile",
    "PROMETHEUS_CONTENT_TYPE",
    "RuntimeStatsPoller",
    "SamplingDecision",
    "SamplingPolicy",
    "SloPolicy",
    "SloTracker",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "TailSampler",
    "Tracer",
    "collect_profiles",
    "current_registry",
    "current_request_id",
    "current_span",
    "current_tracer",
    "merge_histogram_states",
    "metric_name",
    "metrics_scope",
    "op_span",
    "parse_prometheus",
    "plan_digest",
    "profile_plan",
    "render_plan",
    "render_prometheus",
    "rollup_registries",
    "render_span_tree",
    "request_scope",
    "runs_summary",
    "tracing_scope",
]
