"""Observability: tracing, metrics, EXPLAIN ANALYZE, slow-query log.

This package is the bottom of the import graph — it depends only on the
standard library, and every other layer (plan, backends, resilience,
session) emits into it:

* :class:`Tracer` / :func:`tracing_scope` — hierarchical spans
  propagated through context variables (surviving worker threads and
  retry ladders), exportable as a tree or Chrome ``trace_event`` JSON;
* :class:`MetricsRegistry` — named counters, gauges, and fixed-boundary
  histograms with p50/p95/p99 summaries; one process-wide default plus
  per-session isolated registries via :func:`metrics_scope`;
* :func:`profile_plan` / :class:`ExplainResult` — logical plans
  annotated per-node with actual calls/rows/batches/seconds pulled from
  span data (``KdapSession.explain`` / ``repro explain``);
* :class:`SlowQueryLog` — threshold-triggered ring of slow queries with
  interpretation, plan fingerprint, and span tree.

Public surface::

    from repro.obs import (
        Tracer, Span, NOOP, NOOP_SPAN, tracing_scope, current_tracer,
        current_span, op_span, plan_digest,
        MetricsRegistry, Counter, Gauge, Histogram, DEFAULT_REGISTRY,
        metrics_scope, current_registry, runs_summary,
        ExplainNode, ExplainResult, OpProfile, profile_plan,
        render_plan, render_span_tree,
        SlowQueryLog, SlowQueryRecord,
    )
"""

from .tracer import (
    NOOP,
    NOOP_SPAN,
    Span,
    Tracer,
    current_request_id,
    current_span,
    current_tracer,
    op_span,
    plan_digest,
    request_scope,
    tracing_scope,
)
from .metrics import (
    DEFAULT_REGISTRY,
    LATENCY_BOUNDARIES_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    metrics_scope,
    runs_summary,
)
from .explain import (
    ExplainNode,
    ExplainResult,
    OpProfile,
    collect_profiles,
    profile_plan,
    render_plan,
    render_span_tree,
)
from .slowlog import SlowQueryLog, SlowQueryRecord

__all__ = [
    "Counter",
    "DEFAULT_REGISTRY",
    "ExplainNode",
    "ExplainResult",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDARIES_S",
    "MetricsRegistry",
    "NOOP",
    "NOOP_SPAN",
    "OpProfile",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "Tracer",
    "collect_profiles",
    "current_registry",
    "current_request_id",
    "current_span",
    "current_tracer",
    "metrics_scope",
    "op_span",
    "plan_digest",
    "profile_plan",
    "render_plan",
    "render_span_tree",
    "request_scope",
    "runs_summary",
    "tracing_scope",
]
