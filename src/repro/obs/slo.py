"""Rolling-window SLO tracking: target p95, error budget, burn rate.

A latency histogram says how the service has behaved *since boot*; an
operator needs to know how it behaves *right now* against an objective.
:class:`SloTracker` keeps a rolling window of per-second slots, each
counting requests, **bad** requests, and a per-slot copy of the
fixed-boundary latency bucket counts.  A request is *bad* when it errored
(5xx) or exceeded the latency target — the standard "latency SLO as an
availability SLO" trick, so one error budget covers both failure modes.

Burn rate is the classic multi-window formulation: over a window,

    burn = (bad / total) / error_budget

so ``burn == 1.0`` consumes the budget exactly as fast as it is granted,
and Google-SRE-style thresholds (e.g. ``burn > 2`` sustained across a
short *and* a long window) page before the budget is gone but not on a
single blip.  :meth:`observe` is O(1) per request; :meth:`status` is
O(window) per scrape, which is the right side of that trade for a
tracker sitting on the request path.

Burn-alert transitions (``burning`` flips) are emitted into the service
:class:`~repro.obs.events.EventLog` as ``slo.burn`` / ``slo.recovered``
events, so the operator timeline interleaves objective burns with the
shed/error events that caused them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from .metrics import LATENCY_BOUNDARIES_S


@dataclass(frozen=True)
class SloPolicy:
    """The objective: target p95 latency, error budget, and windows.

    ``error_budget`` is the tolerated bad-request fraction (0.01 = 99%
    of requests must be good).  ``short_window_s`` / ``long_window_s``
    are the two burn-rate windows; ``burn_alert`` is the burn-rate
    threshold that must be exceeded in **both** windows to alert (the
    long window keeps blips from paging, the short window ends the alert
    promptly once the incident stops).
    """

    target_p95_ms: float = 1_000.0
    error_budget: float = 0.01
    short_window_s: float = 60.0
    long_window_s: float = 600.0
    burn_alert: float = 2.0

    def __post_init__(self) -> None:
        if self.target_p95_ms <= 0:
            raise ValueError("target_p95_ms must be positive")
        if not 0.0 < self.error_budget <= 1.0:
            raise ValueError("error_budget must be in (0, 1]")
        if self.short_window_s <= 0 \
                or self.long_window_s < self.short_window_s:
            raise ValueError("windows must be positive with "
                             "long_window_s >= short_window_s")
        if self.burn_alert <= 0:
            raise ValueError("burn_alert must be positive")


class _Slot:
    """One second of observations: totals plus latency bucket counts."""

    __slots__ = ("second", "total", "bad", "errors", "counts",
                 "max_ms")

    def __init__(self, second: int, n_buckets: int):
        self.second = second
        self.total = 0
        self.bad = 0
        self.errors = 0
        self.counts = [0] * n_buckets
        self.max_ms = 0.0


class SloTracker:
    """Rolling-window SLO accounting over per-second slots.

    ``clock`` is injectable so tests can march time deterministically.
    ``event_log`` (optional) receives ``slo.burn`` / ``slo.recovered``
    events when the alert state flips; the flip is evaluated on each
    :meth:`observe` so an alert begins with the request that caused it.
    """

    def __init__(self, policy: SloPolicy | None = None,
                 clock=time.monotonic, event_log=None,
                 boundaries: tuple[float, ...] = LATENCY_BOUNDARIES_S):
        self.policy = policy or SloPolicy()
        self._clock = clock
        self._event_log = event_log
        self.boundaries = tuple(boundaries)
        self._n_buckets = len(self.boundaries) + 1
        self._slots: dict[int, _Slot] = {}
        self._lock = threading.Lock()
        self.burning = False
        self.alerts = 0
        self.observed = 0

    # -- ingest --------------------------------------------------------
    def _bucket_index(self, value_s: float) -> int:
        lo, hi = 0, len(self.boundaries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.boundaries[mid] < value_s:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def observe(self, *, elapsed_ms: float, error: bool = False) -> None:
        """Record one finished request and re-evaluate the alert state."""
        policy = self.policy
        now = self._clock()
        second = int(now)
        bad = error or elapsed_ms > policy.target_p95_ms
        flipped = None
        with self._lock:
            slot = self._slots.get(second)
            if slot is None:
                slot = self._slots[second] = _Slot(second, self._n_buckets)
                self._evict(now)
            slot.total += 1
            slot.counts[self._bucket_index(elapsed_ms / 1000.0)] += 1
            slot.max_ms = max(slot.max_ms, elapsed_ms)
            if bad:
                slot.bad += 1
            if error:
                slot.errors += 1
            self.observed += 1
            short = self._burn(now, policy.short_window_s)
            long_ = self._burn(now, policy.long_window_s)
            burning = (short is not None and long_ is not None
                       and short > policy.burn_alert
                       and long_ > policy.burn_alert)
            if burning != self.burning:
                self.burning = burning
                if burning:
                    self.alerts += 1
                flipped = ("slo.burn" if burning else "slo.recovered",
                           short, long_)
        if flipped is not None and self._event_log is not None:
            kind, short, long_ = flipped
            self._event_log.emit(
                kind,
                burn_short=round(short, 4), burn_long=round(long_, 4),
                threshold=policy.burn_alert,
                target_p95_ms=policy.target_p95_ms,
                error_budget=policy.error_budget)

    def _evict(self, now: float) -> None:
        horizon = int(now - self.policy.long_window_s) - 1
        for second in [s for s in self._slots if s < horizon]:
            del self._slots[second]

    # -- analysis (callers hold the lock or use status()) --------------
    def _window_slots(self, now: float, window_s: float) -> list[_Slot]:
        start = int(now - window_s)
        return [slot for slot in self._slots.values()
                if slot.second > start]

    def _burn(self, now: float, window_s: float) -> float | None:
        slots = self._window_slots(now, window_s)
        total = sum(slot.total for slot in slots)
        if not total:
            return None
        bad = sum(slot.bad for slot in slots)
        return (bad / total) / self.policy.error_budget

    def _window_p95_ms(self, slots) -> float | None:
        total = sum(slot.total for slot in slots)
        if not total:
            return None
        counts = [0] * self._n_buckets
        for slot in slots:
            for index, count in enumerate(slot.counts):
                counts[index] += count
        target = 0.95 * total
        cumulative = 0
        max_ms = max(slot.max_ms for slot in slots)
        for index, count in enumerate(counts):
            cumulative += count
            if cumulative >= target:
                upper_s = (self.boundaries[index]
                           if index < len(self.boundaries)
                           else max_ms / 1000.0)
                return min(round(upper_s * 1000.0, 3), max_ms)
        return max_ms

    # -- exposition ----------------------------------------------------
    def status(self) -> dict:
        """JSON-serialisable SLO state for ``/v1/statz``."""
        policy = self.policy
        now = self._clock()
        with self._lock:
            windows = {}
            for label, span in (("short", policy.short_window_s),
                                ("long", policy.long_window_s)):
                slots = self._window_slots(now, span)
                total = sum(slot.total for slot in slots)
                bad = sum(slot.bad for slot in slots)
                errors = sum(slot.errors for slot in slots)
                burn = ((bad / total) / policy.error_budget
                        if total else None)
                windows[label] = {
                    "window_s": span,
                    "total": total,
                    "bad": bad,
                    "errors": errors,
                    "bad_rate": round(bad / total, 6) if total else None,
                    "burn_rate": (round(burn, 4)
                                  if burn is not None else None),
                    "p95_ms": self._window_p95_ms(slots),
                }
            return {
                "policy": {
                    "target_p95_ms": policy.target_p95_ms,
                    "error_budget": policy.error_budget,
                    "short_window_s": policy.short_window_s,
                    "long_window_s": policy.long_window_s,
                    "burn_alert": policy.burn_alert,
                },
                "observed": self.observed,
                "burning": self.burning,
                "alerts": self.alerts,
                "windows": windows,
            }
