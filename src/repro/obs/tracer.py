"""Hierarchical query tracing with Chrome ``trace_event`` export.

A :class:`Tracer` records a tree of timed :class:`Span` objects —
``differentiate`` containing ``starnet.enumerate``, ``explore``
containing per-operator backend spans, retry attempts containing error
tags — and exports it either as a nested dict tree (:meth:`Tracer.
to_tree`) or as Chrome ``trace_event`` JSON (:meth:`Tracer.
to_chrome_trace`) loadable in ``chrome://tracing`` / Perfetto.

Propagation is ambient: :func:`tracing_scope` installs a tracer into a
:class:`~contextvars.ContextVar`, and the *current span* rides a second
context variable, so nesting needs no span argument threading.  Both
variables are carried into worker threads by
``contextvars.copy_context().run`` — which the session's ray-prefetch
pool already uses — so spans opened on a worker thread parent correctly
under the originating query span.

When no tracer is installed, :func:`current_tracer` returns the
module-level :data:`NOOP` tracer whose ``span()`` hands back one shared
do-nothing context manager: the disabled hot path costs one context-var
read and no allocation, which the benchmark suite gates at < 3%
overhead on the scan-aggregate workload.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar


def plan_digest(node) -> str:
    """Stable short hex digest of a plan node's canonical fingerprint.

    Used to tag per-operator spans so EXPLAIN ANALYZE can join span data
    back to plan-tree nodes, and recorded by the slow-query log (stable
    across processes, unlike ``hash()``).
    """
    payload = repr(node.fingerprint()).encode("utf-8", "backslashreplace")
    return hashlib.sha1(payload).hexdigest()[:12]


class Span:
    """One timed, tagged node of a trace tree (a context manager).

    Spans are *inclusive*: a span's duration covers its children, like
    the "actual time" of a SQL EXPLAIN ANALYZE node.  Tags set after
    ``__exit__`` are allowed (the resilience layer tags errors while
    unwinding) but a span must only be entered once.
    """

    __slots__ = ("name", "tags", "tracer", "parent", "children",
                 "start_s", "end_s", "thread_id", "error", "_token")

    def __init__(self, tracer: "Tracer", name: str, tags: dict):
        self.name = name
        self.tags = tags
        self.tracer = tracer
        self.parent: Span | None = None
        self.children: list[Span] = []
        self.start_s = 0.0
        self.end_s = 0.0
        self.thread_id = 0
        self.error: str | None = None
        self._token = None

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "Span":
        self.thread_id = threading.get_ident()
        self.parent = _CURRENT_SPAN.get()
        self.tracer._attach(self)
        self._token = _CURRENT_SPAN.set(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.end_s = time.perf_counter()
        if exc is not None and self.error is None:
            self.set_error(exc)
        _CURRENT_SPAN.reset(self._token)
        return False

    # -- annotation ----------------------------------------------------
    def set_tag(self, key: str, value) -> None:
        self.tags[key] = value

    def set_error(self, exc: BaseException) -> None:
        """Tag this span as failed (retry attempts, failovers)."""
        self.error = f"{type(exc).__name__}: {exc}"
        self.tags["error"] = self.error

    # -- introspection -------------------------------------------------
    @property
    def duration_s(self) -> float:
        """Inclusive wall time (0.0 while the span is still open)."""
        if not self.end_s:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        """This span and its children as a JSON-serialisable tree."""
        out = {
            "name": self.name,
            "seconds": round(self.duration_s, 6),
            "thread": self.thread_id,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration_s * 1000:.2f} ms, "
                f"{len(self.children)} children)")


class Tracer:
    """Collects a forest of spans for one traced scope.

    Span trees may be built from several threads at once (ray-prefetch
    workers); child attachment is lock-guarded, while per-span fields
    stay single-writer (each span lives on the thread that opened it).
    """

    enabled = True

    def __init__(self):
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    def span(self, name: str, **tags) -> Span:
        """A new span, opened by using it as a context manager."""
        return Span(self, name, tags)

    def _attach(self, span: Span) -> None:
        # a span whose contextual parent belongs to a *different* tracer
        # (nested tracing scopes) roots here instead of leaking into the
        # outer tracer's tree
        if span.parent is not None and span.parent.tracer is not self:
            span.parent = None
        with self._lock:
            if span.parent is not None:
                span.parent.children.append(span)
            else:
                self.roots.append(span)

    # -- export --------------------------------------------------------
    def spans(self):
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def to_tree(self) -> list[dict]:
        """The whole trace as a list of nested span dicts."""
        return [root.to_dict() for root in self.roots]

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON (open in ``chrome://tracing``).

        Spans become complete ("X") events with microsecond timestamps
        relative to the tracer's creation; threads are renumbered to
        compact tids with name metadata so worker threads group sanely
        in the timeline.
        """
        events: list[dict] = []
        tids: dict[int, int] = {}
        for span in self.spans():
            tid = tids.setdefault(span.thread_id, len(tids))
            args = {k: _json_safe(v) for k, v in span.tags.items()}
            events.append({
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": round((span.start_s - self._epoch) * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "args": args,
            })
        for ident, tid in tids.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": f"thread-{tid} ({ident})"},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def _json_safe(value):
    """Tag values as JSON-representable scalars (repr as a fallback)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class _NoopSpan:
    """Shared do-nothing span: the entire disabled-tracing fast path."""

    __slots__ = ()
    name = "noop"
    tags: dict = {}
    children: list = []
    error = None
    duration_s = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_tag(self, key: str, value) -> None:
        pass

    def set_error(self, exc: BaseException) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _NoopTracer:
    """The ambient tracer when tracing is off: every span is NOOP_SPAN."""

    enabled = False
    roots: list = []

    def span(self, name: str, **tags) -> _NoopSpan:
        return NOOP_SPAN

    def to_tree(self) -> list:
        return []

    def to_chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


NOOP = _NoopTracer()

_ACTIVE_TRACER: ContextVar["Tracer | _NoopTracer"] = \
    ContextVar("kdap_tracer", default=NOOP)
_CURRENT_SPAN: ContextVar[Span | None] = ContextVar("kdap_span",
                                                    default=None)
_REQUEST_ID: ContextVar[str | None] = ContextVar("kdap_request_id",
                                                 default=None)


def current_tracer() -> "Tracer | _NoopTracer":
    """The ambient tracer (:data:`NOOP` outside any scope)."""
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span of this context, if any."""
    return _CURRENT_SPAN.get()


@contextmanager
def tracing_scope(tracer: "Tracer | _NoopTracer | None"):
    """Install ``tracer`` as the ambient tracer for the duration.

    ``None`` installs nothing (one ``with tracing_scope(maybe_tracer):``
    fits both the traced and untraced call sites).
    """
    if tracer is None:
        yield None
        return
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


def current_request_id() -> str | None:
    """The ambient request id, if a service request is executing."""
    return _REQUEST_ID.get()


@contextmanager
def request_scope(request_id: str | None):
    """Attribute work in this context to one service request.

    The id rides a context variable — like the tracer and the budget, it
    survives ``contextvars.copy_context().run`` into worker threads — so
    operator spans recorded anywhere under a request carry its id and a
    shared trace can be sliced per request.  ``None`` installs nothing.
    """
    if request_id is None:
        yield None
        return
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)


def op_span(node):
    """A span for one plan-operator execution, or the no-op span.

    The enabled check lives here so backends pay nothing for the digest
    computation when tracing is off.
    """
    tracer = _ACTIVE_TRACER.get()
    if not tracer.enabled:
        return NOOP_SPAN
    span = tracer.span("op." + node.kind, fp=plan_digest(node))
    request_id = _REQUEST_ID.get()
    if request_id is not None:
        span.set_tag("request", request_id)
    return span
