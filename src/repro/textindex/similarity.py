"""Document–query similarity scoring.

Implements Lucene's *classic* (TF-IDF vector-space) similarity, which is
what the KDAP prototype consumed via ``Sim(h.val, q)``:

    score(q, d) = coord(q, d) * sum_t[ tf(t, d) * idf(t)^2 * norm(d) ]

with

    tf(t, d)  = sqrt(freq(t, d))
    idf(t)    = 1 + ln(N / (df(t) + 1))
    norm(d)   = 1 / sqrt(|d|)
    coord(q,d)= (# query terms matched) / (# query terms)

The exact constants matter less than the monotonic structure the paper's
ranking formula exploits: exact multi-term matches in short attribute values
score higher than partial matches in long ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Similarity:
    """Lucene-classic TF-IDF similarity with tunable components.

    Setting the flags to False degrades the scorer gracefully — useful for
    ablation tests of the ranking formula.
    """

    use_coord: bool = True
    use_length_norm: bool = True

    def tf(self, freq: int) -> float:
        """Term-frequency factor."""
        return math.sqrt(freq)

    def idf(self, doc_freq: int, num_docs: int) -> float:
        """Inverse-document-frequency factor."""
        return 1.0 + math.log(num_docs / (doc_freq + 1.0))

    def length_norm(self, doc_length: int) -> float:
        """Document length normalisation."""
        if not self.use_length_norm or doc_length <= 0:
            return 1.0
        return 1.0 / math.sqrt(doc_length)

    def coord(self, matched_terms: int, query_terms: int) -> float:
        """Coordination factor rewarding documents matching more of the query."""
        if not self.use_coord or query_terms <= 0:
            return 1.0
        return matched_terms / query_terms

    def score(
        self,
        term_freqs: dict[str, int],
        doc_length: int,
        query_terms: list[str],
        doc_freq_of: dict[str, int],
        num_docs: int,
    ) -> float:
        """Score one document against a bag of query terms.

        Parameters
        ----------
        term_freqs:
            Term → in-document frequency for the document.
        doc_length:
            Total number of indexed terms in the document.
        query_terms:
            Analyzed query terms (duplicates allowed).
        doc_freq_of:
            Term → number of documents containing the term.
        num_docs:
            Corpus size.
        """
        total = 0.0
        matched = 0
        for term in query_terms:
            freq = term_freqs.get(term, 0)
            if freq == 0:
                continue
            matched += 1
            idf = self.idf(doc_freq_of.get(term, 0), num_docs)
            total += self.tf(freq) * idf * idf
        if matched == 0:
            return 0.0
        total *= self.length_norm(doc_length)
        total *= self.coord(matched, len(set(query_terms)))
        return total


DEFAULT_SIMILARITY = Similarity()
"""Shared similarity instance with all components enabled."""
