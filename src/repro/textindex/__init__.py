"""Full-text engine substrate (Lucene equivalent for KDAP).

Public surface::

    from repro.textindex import (
        Analyzer, DEFAULT_ANALYZER, STOPWORDS, stem,
        InvertedIndex, Posting,
        Similarity, DEFAULT_SIMILARITY,
        AttributeTextIndex, TupleTextIndex, SearchHit,
    )
"""

from .analysis import Analyzer, DEFAULT_ANALYZER, STOPWORDS
from .index import AttributeTextIndex, SearchHit, TupleTextIndex
from .inverted import InvertedIndex, Posting
from .similarity import DEFAULT_SIMILARITY, Similarity
from .stemmer import stem

__all__ = [
    "Analyzer",
    "AttributeTextIndex",
    "DEFAULT_ANALYZER",
    "DEFAULT_SIMILARITY",
    "InvertedIndex",
    "Posting",
    "STOPWORDS",
    "SearchHit",
    "Similarity",
    "TupleTextIndex",
    "stem",
]
