"""Text analysis pipeline: tokenize → lowercase → stopword filter → stem.

Mirrors Lucene's ``StandardAnalyzer`` + ``PorterStemFilter`` combination the
KDAP prototype used.  The analyzer is deliberately deterministic and
side-effect free so the same pipeline can run at index time and query time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .stemmer import stem

# Tokens are runs of alphanumerics, keeping intra-word hyphens/apostrophes
# joined content separate (Mountain-100 -> ["mountain", "100"]), plus
# embedded digits as their own tokens; this matches what StandardAnalyzer
# does to product codes like "Sport-100" and emails.
_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")

STOPWORDS: frozenset[str] = frozenset(
    """a an and are as at be but by for if in into is it no not of on or
    such that the their then there these they this to was will with""".split()
)
"""Lucene's classic English stopword list."""


@dataclass(frozen=True)
class Analyzer:
    """A configurable analysis pipeline.

    Parameters
    ----------
    use_stemming:
        Apply the Porter stemmer to each token (default True).
    use_stopwords:
        Drop stopwords before stemming (default True).
    """

    use_stemming: bool = True
    use_stopwords: bool = True

    def tokenize(self, content: str) -> list[str]:
        """Raw lowercase tokens without stopword removal or stemming."""
        return [m.group(0).lower() for m in _TOKEN_RE.finditer(content)]

    def analyze(self, content: str) -> list[str]:
        """Full pipeline: index/query terms for ``content``."""
        terms = []
        for token in self.tokenize(content):
            if self.use_stopwords and token in STOPWORDS:
                continue
            if self.use_stemming:
                token = stem(token)
            terms.append(token)
        return terms


DEFAULT_ANALYZER = Analyzer()
"""Shared analyzer with stemming and stopwords enabled."""
