"""Porter stemming algorithm.

A faithful implementation of M.F. Porter's 1980 algorithm ("An algorithm
for suffix stripping", *Program* 14(3)), the same stemmer Lucene's classic
``PorterStemFilter`` uses.  The KDAP paper relies on the full-text engine
for "partial matches and stemming over OLAP data" (§3), so keyword
``bikes`` must hit the attribute instance ``Mountain Bikes``.

The implementation follows the published step structure (1a/1b/1c, 2-5)
directly so it can be audited against the paper's reference vocabulary.
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter measure m: number of VC sequences in the stem."""
    m = 0
    i = 0
    n = len(stem)
    # skip initial consonants
    while i < n and _is_consonant(stem, i):
        i += 1
    while i < n:
        # inside a vowel run
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        m += 1
        while i < n and _is_consonant(stem, i):
            i += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """*o condition: stem ends consonant-vowel-consonant, last not w/x/y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace(word: str, suffix: str, replacement: str, min_measure: int) -> str | None:
    """If ``word`` ends with ``suffix`` and the stem measure is at least
    ``min_measure`` + 1, swap the suffix; None when the rule does not fire."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word  # suffix matched but condition failed: rule consumed, no change


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3_RULES = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4_SUFFIXES = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _step2(word: str) -> str:
    for suffix, replacement in _STEP2_RULES:
        if word.endswith(suffix):
            result = _replace(word, suffix, replacement, 0)
            if result is not None:
                return result
    return word


def _step3(word: str) -> str:
    for suffix, replacement in _STEP3_RULES:
        if word.endswith(suffix):
            result = _replace(word, suffix, replacement, 0)
            if result is not None:
                return result
    return word


def _step4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if suffix == "ion" and (not stem or stem[-1] not in "st"):
                return word
            if _measure(stem) > 1:
                return stem
            return word
    return word


def _step5(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            word = stem
    if word.endswith("ll") and _measure(word) > 1:
        word = word[:-1]
    return word


def stem(word: str) -> str:
    """Stem one lowercase word.

    Words of length <= 2 are returned unchanged, as in Porter's reference
    implementation.
    """
    if len(word) <= 2:
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _step2(word)
    word = _step3(word)
    word = _step4(word)
    word = _step5(word)
    return word
