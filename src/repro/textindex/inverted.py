"""The inverted index: term → postings.

Documents are integers (doc ids) assigned at add time; each posting stores
the in-document term frequency and term positions (positions enable phrase
scoring).  A prefix trie over the vocabulary supports the "partial matches"
the paper requires, so the query ``mount`` can reach ``mountain``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass
class Posting:
    """One (document, term) occurrence record."""

    doc_id: int
    freq: int
    positions: tuple[int, ...]


class InvertedIndex:
    """Term → postings map with document length bookkeeping."""

    def __init__(self):
        self._postings: dict[str, list[Posting]] = defaultdict(list)
        self._doc_lengths: dict[int, int] = {}
        self._next_doc_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_document(self, terms: list[str]) -> int:
        """Index one analyzed document; returns its doc id."""
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        positions: dict[str, list[int]] = defaultdict(list)
        for pos, term in enumerate(terms):
            positions[term].append(pos)
        for term, pos_list in positions.items():
            self._postings[term].append(
                Posting(doc_id, len(pos_list), tuple(pos_list))
            )
        self._doc_lengths[doc_id] = len(terms)
        return doc_id

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def num_docs(self) -> int:
        """Number of indexed documents."""
        return self._next_doc_id

    def doc_length(self, doc_id: int) -> int:
        """Number of terms indexed for ``doc_id``."""
        return self._doc_lengths.get(doc_id, 0)

    def doc_freq(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def vocabulary(self) -> Iterator[str]:
        """All indexed terms."""
        return iter(self._postings)

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def postings(self, term: str) -> list[Posting]:
        """Postings list for an exact term (empty when absent)."""
        return self._postings.get(term, [])

    def expand_prefix(self, prefix: str, limit: int = 50) -> list[str]:
        """Indexed terms starting with ``prefix`` (for partial matching).

        Sorted for determinism; capped at ``limit`` expansions like Lucene's
        ``maxClauseCount`` guard.
        """
        matches = sorted(t for t in self._postings if t.startswith(prefix))
        return matches[:limit]

    def expand_fuzzy(self, term: str, max_edits: int = 1,
                     limit: int = 50) -> list[str]:
        """Indexed terms within ``max_edits`` Levenshtein edits of ``term``.

        Implements the "approximate search" half of the paper's §3 text
        index requirements (typo tolerance: ``Colombus`` still reaches
        ``columbus``).  Candidates are pruned by length before the edit
        distance is computed; very short terms (<= 2 chars) only match
        exactly, mirroring Lucene's fuzzy-prefix safeguard.
        """
        if len(term) <= 2:
            return [term] if term in self._postings else []
        matches = sorted(
            candidate for candidate in self._postings
            if abs(len(candidate) - len(term)) <= max_edits
            and _levenshtein_within(term, candidate, max_edits)
        )
        return matches[:limit]

    def candidate_docs(self, terms: Iterable[str]) -> set[int]:
        """Doc ids containing at least one of ``terms`` (OR semantics)."""
        docs: set[int] = set()
        for term in terms:
            docs.update(p.doc_id for p in self._postings.get(term, ()))
        return docs

    def term_freqs(self, doc_id: int, terms: Iterable[str]) -> dict[str, int]:
        """Frequencies of the given terms inside one document."""
        out: dict[str, int] = {}
        for term in terms:
            for posting in self._postings.get(term, ()):
                if posting.doc_id == doc_id:
                    out[term] = posting.freq
                    break
        return out

    def phrase_match(self, doc_id: int, terms: list[str]) -> bool:
        """True when ``terms`` occur as a contiguous phrase in ``doc_id``."""
        if not terms:
            return False
        position_sets: list[set[int]] = []
        for term in terms:
            positions: set[int] | None = None
            for posting in self._postings.get(term, ()):
                if posting.doc_id == doc_id:
                    positions = set(posting.positions)
                    break
            if positions is None:
                return False
            position_sets.append(positions)
        first = position_sets[0]
        return any(
            all((start + offset) in position_sets[offset]
                for offset in range(1, len(position_sets)))
            for start in first
        )


def _levenshtein_within(a: str, b: str, max_edits: int) -> bool:
    """True when the Levenshtein distance of ``a`` and ``b`` is at most
    ``max_edits``; banded DP that bails out early."""
    if a == b:
        return True
    if abs(len(a) - len(b)) > max_edits:
        return False
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            value = min(previous[j] + 1,        # deletion
                        current[j - 1] + 1,     # insertion
                        previous[j - 1] + cost)  # substitution
            current.append(value)
            row_min = min(row_min, value)
        if row_min > max_edits:
            return False
        previous = current
    return previous[-1] <= max_edits
