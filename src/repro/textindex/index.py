"""Attribute-level full-text index over a warehouse.

The paper (§3) requires an index conceptually shaped like the relation
``(TabName, AttrID, Document)`` where every *distinct attribute value* is a
virtual document — NOT a tuple-level index.  This is what makes hit groups
and query disambiguation possible: the same string matched in
``Loc.City`` and ``Holiday.Event`` yields two distinguishable hits.

:class:`AttributeTextIndex` builds that structure over a
:class:`~repro.relational.catalog.Database`, restricted to the text
attributes declared searchable.  A :class:`TupleTextIndex` (tuple-level
virtual documents, the approach of DBXplorer/DISCOVER) is also provided for
the ablation the paper argues against in §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..relational.catalog import Database
from .analysis import Analyzer, DEFAULT_ANALYZER
from .inverted import InvertedIndex
from .similarity import DEFAULT_SIMILARITY, Similarity


@dataclass(frozen=True)
class SearchHit:
    """One attribute-instance hit: the paper's triplet (R, Attr, Val) plus
    the full-text relevance score ``Sim(h.val, q)``.

    ``retrieval_score`` preserves the raw per-keyword engine score from
    index probing; ``score`` may later be re-computed against the full
    query (§4.4) or a merged phrase (§4.3).  The baseline ranking method of
    Figure 4 averages retrieval scores directly.
    """

    table: str
    attribute: str
    value: str
    score: float
    retrieval_score: float | None = None

    @property
    def raw_score(self) -> float:
        """The engine score as retrieved (falls back to ``score``)."""
        return self.retrieval_score if self.retrieval_score is not None \
            else self.score

    @property
    def domain(self) -> tuple[str, str]:
        """The attribute domain (table, attribute) this hit belongs to."""
        return (self.table, self.attribute)

    def __str__(self) -> str:
        return f"{self.table}/{self.attribute}/{self.value!r} ({self.score:.4f})"


class AttributeTextIndex:
    """Full-text index with one virtual document per distinct
    (table, attribute, value)."""

    def __init__(
        self,
        analyzer: Analyzer = DEFAULT_ANALYZER,
        similarity: Similarity = DEFAULT_SIMILARITY,
    ):
        self.analyzer = analyzer
        self.similarity = similarity
        self._index = InvertedIndex()
        # doc id -> (table, attribute, value), plus the reverse map
        self._docs: list[tuple[str, str, str]] = []
        self._doc_ids: dict[tuple[str, str, str], int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_value(self, table: str, attribute: str, value: str) -> int:
        """Index one attribute instance; returns the virtual doc id."""
        terms = self.analyzer.analyze(value)
        doc_id = self._index.add_document(terms)
        self._docs.append((table, attribute, value))
        self._doc_ids[(table, attribute, value)] = doc_id
        return doc_id

    def index_database(
        self,
        database: Database,
        searchable: dict[str, Sequence[str]],
    ) -> None:
        """Index every distinct value of the declared searchable attributes.

        ``searchable`` maps table name → list of text column names.
        """
        for table_name, columns in searchable.items():
            table = database.table(table_name)
            for column in columns:
                for value in sorted(
                    table.distinct(column), key=str
                ):
                    if isinstance(value, str) and value:
                        self.add_value(table_name, column, value)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def num_documents(self) -> int:
        """Number of indexed attribute instances."""
        return len(self._docs)

    def domains(self) -> set[tuple[str, str]]:
        """All (table, attribute) domains with at least one indexed value."""
        return {(t, a) for t, a, _ in self._docs}

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        limit: int | None = None,
        prefix_expansion: bool = True,
        fuzzy: bool = False,
        min_score: float = 0.0,
    ) -> list[SearchHit]:
        """Rank attribute instances against a keyword (or phrase) query.

        Prefix expansion implements the "partial match" requirement: query
        terms additionally match indexed terms they prefix (scored through
        the same TF-IDF machinery, so exact matches naturally win on idf).
        ``fuzzy`` additionally matches terms within one Levenshtein edit —
        typo tolerance for queries like "Colombus LCD".
        """
        query_terms = self.analyzer.analyze(query)
        if not query_terms:
            return []
        # Expand each query term to the set of index terms it can stand for.
        expansions: dict[str, list[str]] = {}
        for term in query_terms:
            forms = [term] if self._index.doc_freq(term) else []
            if prefix_expansion:
                for candidate in self._index.expand_prefix(term):
                    if candidate != term:
                        forms.append(candidate)
            if fuzzy:
                for candidate in self._index.expand_fuzzy(term):
                    if candidate != term and candidate not in forms:
                        forms.append(candidate)
            expansions[term] = forms or [term]
        all_terms = [form for forms in expansions.values() for form in forms]
        doc_ids = self._index.candidate_docs(all_terms)
        doc_freq_of = {t: self._index.doc_freq(t) for t in set(all_terms)}
        num_docs = max(self._index.num_docs, 1)
        hits: list[SearchHit] = []
        for doc_id in doc_ids:
            freqs = self._index.term_freqs(doc_id, set(all_terms))
            # Collapse expansions back onto their source query term so coord
            # counts *query terms matched*, not expanded forms matched.
            collapsed: dict[str, int] = {}
            for term, forms in expansions.items():
                freq = sum(freqs.get(f, 0) for f in forms)
                if freq:
                    collapsed[term] = freq
            score = self.similarity.score(
                collapsed,
                self._index.doc_length(doc_id),
                query_terms,
                {t: max((doc_freq_of.get(f, 0) for f in expansions[t]),
                        default=0)
                 for t in expansions},
                num_docs,
            )
            if score > min_score:
                table, attribute, value = self._docs[doc_id]
                hits.append(SearchHit(table, attribute, value, score))
        hits.sort(key=lambda h: (-h.score, h.table, h.attribute, h.value))
        if limit is not None:
            hits = hits[:limit]
        return hits

    def search_phrase(self, phrase: str, limit: int | None = None) -> list[SearchHit]:
        """Rank attribute instances that contain ``phrase`` contiguously.

        Used to re-score merged hit groups after phrase detection (§4.3):
        "the system also needs to update the score by consulting the
        full-text engine again with the newly-merged phrase query."
        """
        terms = self.analyzer.analyze(phrase)
        if not terms:
            return []
        candidates = self.search(phrase, prefix_expansion=False)
        hits = []
        for hit in candidates:
            doc_id = self._doc_id_of(hit)
            if doc_id is not None and self._index.phrase_match(doc_id, terms):
                # Phrase matches keep the full multi-term score; the coord
                # factor already rewarded matching every term.
                hits.append(hit)
        if limit is not None:
            hits = hits[:limit]
        return hits

    def score_value(self, table: str, attribute: str, value: str,
                    query: str) -> float:
        """Sim(value, q) for one known attribute instance against the *full*
        keyword query.

        The paper's star-net ranking (§4.4) scores every hit against the
        whole query — not just the keyword that retrieved it — so that
        instances matching several keywords ("San Jose") outscore
        single-keyword matches ("San Antonio").
        """
        doc_id = self._doc_ids.get((table, attribute, value))
        if doc_id is None:
            return 0.0
        query_terms = self.analyzer.analyze(query)
        if not query_terms:
            return 0.0
        doc_freq_of = {t: self._index.doc_freq(t) for t in set(query_terms)}
        freqs = self._index.term_freqs(doc_id, set(query_terms))
        return self.similarity.score(
            freqs,
            self._index.doc_length(doc_id),
            query_terms,
            doc_freq_of,
            max(self._index.num_docs, 1),
        )

    def _doc_id_of(self, hit: SearchHit) -> int | None:
        return self._doc_ids.get((hit.table, hit.attribute, hit.value))


class TupleTextIndex:
    """Tuple-level index (one virtual document per row) — the
    DBXplorer/DISCOVER approach the paper contrasts with in §3.

    Provided for the ablation benchmark showing why attribute-level
    indexing is necessary for disambiguation: a tuple-level hit cannot say
    *which attribute* matched.
    """

    def __init__(self, analyzer: Analyzer = DEFAULT_ANALYZER,
                 similarity: Similarity = DEFAULT_SIMILARITY):
        self.analyzer = analyzer
        self.similarity = similarity
        self._index = InvertedIndex()
        self._docs: list[tuple[str, int]] = []  # (table, row_id)

    def index_database(self, database: Database,
                       searchable: dict[str, Sequence[str]]) -> None:
        """Index each row of each table as the concatenation of its
        searchable text columns."""
        for table_name, columns in searchable.items():
            table = database.table(table_name)
            stores = [table.column_values(c) for c in columns]
            for rid in range(len(table)):
                content = " ".join(
                    str(store[rid]) for store in stores if store[rid]
                )
                terms = self.analyzer.analyze(content)
                self._index.add_document(terms)
                self._docs.append((table_name, rid))

    def search(self, query: str, limit: int | None = None) -> list[tuple[str, int, float]]:
        """Rank rows; returns (table, row_id, score) triples."""
        query_terms = self.analyzer.analyze(query)
        if not query_terms:
            return []
        doc_ids = self._index.candidate_docs(query_terms)
        doc_freq_of = {t: self._index.doc_freq(t) for t in set(query_terms)}
        num_docs = max(self._index.num_docs, 1)
        scored: list[tuple[str, int, float]] = []
        for doc_id in doc_ids:
            freqs = self._index.term_freqs(doc_id, set(query_terms))
            score = self.similarity.score(
                freqs, self._index.doc_length(doc_id),
                query_terms, doc_freq_of, num_docs,
            )
            if score > 0:
                table, rid = self._docs[doc_id]
                scored.append((table, rid, score))
        scored.sort(key=lambda item: (-item[2], item[0], item[1]))
        if limit is not None:
            scored = scored[:limit]
        return scored
