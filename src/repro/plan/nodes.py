"""Logical plan nodes for KDAP query evaluation.

Every evaluation the engine performs — materialising a star net's
sub-dataspace, slicing it along a facet click, aggregating a measure over
a partition — is expressed as a small tree of logical nodes:

* :class:`Scan` — every row of a base table (normally the fact table);
* :class:`RowSet` — a literal, already-materialised set of fact rows
  (a bound subspace re-entering the plan layer);
* :class:`SemiJoin` — restrict the child's rows to those reachable from a
  selected dimension-table row set (one star-net ray);
* :class:`Filter` — restrict by a fact-level predicate or by a
  fact-aligned attribute value set (slice / dice);
* :class:`Partition` — group the child's rows by one or more fact-aligned
  attributes (NULL keys dropped);
* :class:`GroupAggregate` — fold a measure over the child (scalar when the
  child produces rows, a per-group mapping when it is a partition);
* :class:`MultiGroupAggregate` — fold a measure per group for several
  group-by attributes over one shared child in a single scan (the fused
  form of N single-key aggregations).

Plans are *logical*: they name tables, join paths, and predicates, but
prescribe no execution strategy.  Backends (:mod:`repro.plan.backends`)
interpret them either as in-memory row-id operator chains or as SQL.

Every node has a canonical, hashable **fingerprint** — the identity used
by the plan cache, so semantically identical requests share one cache
entry regardless of which consumer (facets, OLAP operators, the session)
built the plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.expressions import Expression, Predicate
from ..warehouse.graph import JoinPath

Fingerprint = tuple
"""Canonical nested-tuple identity of a plan (hashable, order-stable)."""


class PlanNode:
    """Base class for all logical plan nodes."""

    def fingerprint(self) -> Fingerprint:
        """Canonical hashable identity of this subtree."""
        raise NotImplementedError

    @property
    def kind(self) -> str:
        """Operator name used by per-operator counters."""
        return type(self).__name__


@dataclass(frozen=True)
class AttrKey:
    """A fact-aligned attribute: ``table.column`` reached from the fact
    table along ``path`` (oriented fact → table, every step many-to-one)."""

    table: str
    column: str
    path: JoinPath

    def fingerprint(self) -> Fingerprint:
        return (self.table, self.column, self.path.fk_names)

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


# ----------------------------------------------------------------------
# row-producing nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scan(PlanNode):
    """All rows of ``table`` (the whole dataspace when it is the fact
    table)."""

    table: str

    def fingerprint(self) -> Fingerprint:
        return ("scan", self.table)


@dataclass(frozen=True)
class RowSet(PlanNode):
    """A literal set of ``table`` row ids — a materialised subspace used
    as a plan leaf.

    The fingerprint uses (length, structural hash) rather than the full
    row tuple so cache keys stay small; this matches the content-key
    convention the aggregate cache has always used.
    """

    table: str
    rows: tuple[int, ...]

    def fingerprint(self) -> Fingerprint:
        return ("rowset", self.table, len(self.rows), hash(self.rows))


@dataclass(frozen=True)
class SemiJoin(PlanNode):
    """Child rows reachable from selected rows of ``source_table``.

    ``source_table.column IN values`` selects dimension rows; ``path``
    (oriented ``source_table`` → fact) pushes the selection down to the
    fact table as a chain of semi-joins.  ``dimension`` tags which
    dimension the path runs through (None for fact-table selections);
    SQL compilation merges join aliases of same-dimension semi-joins that
    share path prefixes (the paper's intersection semantics).
    """

    child: PlanNode
    source_table: str
    column: str
    values: tuple
    path: JoinPath
    dimension: str | None = None

    def fingerprint(self) -> Fingerprint:
        return (
            "semijoin", self.child.fingerprint(), self.source_table,
            self.column, tuple(sorted(self.values, key=repr)),
            self.path.fk_names, self.dimension,
        )


@dataclass(frozen=True)
class Filter(PlanNode):
    """Row restriction.

    Two flavours, mutually exclusive:

    * ``predicate`` set — a row-level predicate over the base table's own
      columns (measure filters like ``revenue > 5000``);
    * ``attr`` + ``values`` set — keep rows whose fact-aligned ``attr``
      value is in ``values`` (the slice / dice operators).  ``None`` in
      ``values`` keeps rows whose attribute resolves to NULL.
    """

    child: PlanNode
    predicate: Predicate | None = None
    attr: AttrKey | None = None
    values: tuple = ()

    def __post_init__(self) -> None:
        if (self.predicate is None) == (self.attr is None):
            raise ValueError(
                "Filter needs exactly one of predicate= or attr=")

    def fingerprint(self) -> Fingerprint:
        if self.predicate is not None:
            return ("filter", self.child.fingerprint(),
                    str(self.predicate))
        return (
            "filter", self.child.fingerprint(), self.attr.fingerprint(),
            tuple(sorted(self.values, key=repr)),
        )


# ----------------------------------------------------------------------
# grouping and aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Partition(PlanNode):
    """Group the child's rows by one or more fact-aligned attributes.

    Rows whose key resolves to NULL (any key, for multi-key partitions)
    are dropped, matching ``PAR(DS', attr)`` semantics.
    """

    child: PlanNode
    keys: tuple[AttrKey, ...]

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError("Partition needs at least one key")

    def fingerprint(self) -> Fingerprint:
        return (
            "partition", self.child.fingerprint(),
            tuple(k.fingerprint() for k in self.keys),
        )


@dataclass(frozen=True)
class GroupAggregate(PlanNode):
    """Fold an aggregate of a measure expression over the child.

    * child produces rows → scalar result;
    * child is a :class:`Partition` → mapping ``key value → aggregate``
      (tuple-keyed for multi-key partitions).

    ``domain`` (single-key partitions only) restricts the computed groups
    to the given values; missing values aggregate over the empty set
    (0 for sum/count, None for avg/min/max).

    ``measure_sql`` is the canonical rendering used by the fingerprint;
    ``measure_expr`` is the evaluable form used by in-memory execution
    (``None`` means COUNT(*)-style constant 1).
    """

    child: PlanNode
    aggregate: str
    measure_sql: str
    measure_expr: Expression | None = None
    domain: tuple | None = None

    @property
    def grouped(self) -> bool:
        """True when the result is a per-group mapping."""
        return isinstance(self.child, Partition)

    def fingerprint(self) -> Fingerprint:
        return (
            "groupagg", self.child.fingerprint(), self.aggregate,
            self.measure_sql, self.domain,
        )


@dataclass(frozen=True)
class MultiGroupAggregate(PlanNode):
    """Fold one measure per group for *several* group-by attributes over
    the same child rows — the fused form of N single-key
    :class:`GroupAggregate` plans sharing one row source.

    Backends evaluate the child **once**: the in-memory kernel walks the
    rows a single time while updating one accumulator dict per key; the
    SQL compiler emits one batched query (a shared filtered CTE feeding a
    UNION ALL of grouped selects).  The result maps each key's
    fingerprint to that key's ``value → aggregate`` dict.

    ``domains`` (optional, aligned with ``keys``) restricts each key's
    computed groups exactly like :class:`GroupAggregate.domain`: listed
    values that select no rows aggregate over the empty set (0 for
    sum/count, None for avg/min/max).

    The fingerprint is **order-insensitive** in the key set — two
    consumers asking for the same attributes in different orders share
    one cache entry — and tagged distinctly from ``GroupAggregate`` so a
    fused result can never be served for a single-key plan (or vice
    versa).
    """

    child: PlanNode
    keys: tuple[AttrKey, ...]
    aggregate: str
    measure_sql: str
    measure_expr: Expression | None = None
    domains: tuple[tuple | None, ...] | None = None

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError("MultiGroupAggregate needs at least one key")
        if len({k.fingerprint() for k in self.keys}) != len(self.keys):
            raise ValueError("MultiGroupAggregate keys must be distinct")
        if self.domains is not None and len(self.domains) != len(self.keys):
            raise ValueError("domains must align with keys")

    def branches(self) -> tuple[tuple[AttrKey, tuple | None], ...]:
        """(key, domain) pairs in canonical (fingerprint-sorted) order."""
        domains = self.domains or (None,) * len(self.keys)
        return tuple(sorted(zip(self.keys, domains),
                            key=lambda kd: kd[0].fingerprint()))

    def fingerprint(self) -> Fingerprint:
        return (
            "multigroupagg", self.child.fingerprint(), self.aggregate,
            self.measure_sql,
            tuple((key.fingerprint(), domain)
                  for key, domain in self.branches()),
        )


def row_source(plan: PlanNode) -> PlanNode:
    """The row-producing subtree of a plan (skips a Partition wrapper)."""
    if isinstance(plan, (GroupAggregate, MultiGroupAggregate)):
        plan = plan.child
    if isinstance(plan, Partition):
        plan = plan.child
    return plan
