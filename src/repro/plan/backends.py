"""Pluggable execution backends for logical plans.

An :class:`ExecutionBackend` turns logical plans into results:

* :meth:`~ExecutionBackend.materialize` runs a row-producing plan and
  returns the sorted fact-row ids it selects;
* :meth:`~ExecutionBackend.execute` runs a :class:`GroupAggregate` and
  returns a scalar (ungrouped) or a ``key → aggregate`` mapping.

Two engines conform:

* :class:`InMemoryBackend` — the row-id operator chains (semi-joins over
  fact-aligned vectors) that previously lived inline in the executor,
  subspace, and OLAP-operator modules;
* :class:`SqliteBackend` — compiles plans to SQL via
  :mod:`repro.plan.compile` and runs them on a sqlite3 mirror of the
  warehouse, demonstrating the paper's §7 direction of delegating KDAP
  aggregation to an existing OLAP-capable engine.

Both keep per-operator timing/row-count counters
(:class:`~repro.plan.counters.PlanCounters`) so benchmarks can attribute
cost to plan nodes.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import threading
from concurrent.futures import ThreadPoolExecutor
from contextvars import copy_context

from ..obs.tracer import current_tracer, op_span
from ..relational import vector
from ..relational.errors import BackendError, SchemaError
from ..relational.expressions import And, Between, Col, In, Predicate
from ..relational.operators import (
    AGGREGATE_STATES,
    AGGREGATES,
    accumulate_chunk,
    finalize_group_states,
    fused_group_aggregates,
    merge_group_states,
)
from ..relational.sqlite_backend import SqliteBackend as SqliteMirror
from ..relational.sqlite_backend import from_sqlite
from ..relational.types import ColumnType
from ..resilience.budget import charge_groups, charge_rows, check_deadline
from ..warehouse.rollup import select_rows_by_values, slice_facts
from ..warehouse.schema import AttributeRef, StarSchema
from .compile import compile_multi_plan, compile_plan
from .counters import PlanCounters
from .nodes import (
    Filter,
    GroupAggregate,
    MultiGroupAggregate,
    Partition,
    PlanNode,
    RowSet,
    Scan,
    SemiJoin,
    row_source,
)


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the engine requires of an execution backend."""

    name: str
    counters: PlanCounters

    def materialize(self, plan: PlanNode) -> tuple[int, ...]:
        """Sorted row ids selected by a row-producing plan."""

    def execute(self, plan: GroupAggregate) -> object:
        """Scalar aggregate, or ``key → aggregate`` for grouped plans."""

    def close(self) -> None:
        """Release any resources (idempotent)."""


def _leaf(plan: PlanNode) -> PlanNode:
    """The Scan/RowSet leaf anchoring a plan."""
    node = row_source(plan)
    while isinstance(node, (SemiJoin, Filter)):
        node = node.child
    if not isinstance(node, (Scan, RowSet)):
        raise SchemaError(f"plan has no scan leaf: {node!r}")
    return node


def _empty_result(plan: GroupAggregate):
    """The result of aggregating zero rows (shared by both backends)."""
    if plan.grouped:
        if plan.domain is not None:
            fill = AGGREGATES[plan.aggregate](())
            return {value: fill for value in plan.domain}
        return {}
    return AGGREGATES[plan.aggregate](())


def _empty_multi_result(plan: MultiGroupAggregate) -> dict:
    """A fused aggregate over zero rows: every key's dict is its domain
    fill (identical to the single-key empty result, per key)."""
    fill = AGGREGATES[plan.aggregate](())
    return {
        key.fingerprint(): ({} if domain is None
                            else {value: fill for value in domain})
        for key, domain in plan.branches()
    }


def _fill_domains(plan: MultiGroupAggregate, results: dict) -> dict:
    """Apply each key's domain restriction/fill to its raw group dict."""
    fill = AGGREGATES[plan.aggregate](())
    out: dict = {}
    for key, domain in plan.branches():
        groups = results[key.fingerprint()]
        if domain is not None:
            groups = {value: groups.get(value, fill) for value in domain}
        out[key.fingerprint()] = groups
    return out


# ----------------------------------------------------------------------
# in-memory backend
# ----------------------------------------------------------------------
MORSEL_ROWS = 65536
"""Target rows per morsel of a parallel scan-aggregate (a run of whole
chunks; large enough that per-morsel scheduling cost is noise)."""

PARALLEL_MIN_ROWS = 131072
"""Row-count floor below which scan-aggregates stay on the serial
single-pass path.  Serial accumulation adds measures in ascending row
order and is bit-identical to the pre-chunk fold; the morsel merge
re-associates float additions at morsel boundaries, so small (test-size)
workloads never see it."""


class InMemoryBackend:
    """Columnar execution over the schema's encoded column chunks.

    Row-producing plans flow as *selection vectors* split at uniform
    chunk boundaries: each operator narrows its child's selection with
    one encoding-aware kernel per chunk (dictionary ``IN`` probes, RLE
    run expansion, predicate ``select_batch``), and a chunk whose zone
    map proves no row can match is skipped without reading it.  Budgets
    are charged per chunk, so a row/deadline limit interrupts a scan at
    chunk — not whole-operator — granularity, and
    :class:`~repro.plan.counters.PlanCounters` records how many chunks
    each operator scanned vs skipped.

    Scan-aggregates over at least :data:`PARALLEL_MIN_ROWS` rows are
    *morsel-driven*: the chunk list is packed into ~:data:`MORSEL_ROWS`-row
    morsels, ``workers`` threads accumulate mergeable per-group partial
    states (budget charged and deadline checked per morsel, one tracer
    span per morsel via ``copy_context``), and the partials merge in
    morsel-index order — deterministic regardless of completion order.
    """

    name = "memory"

    def __init__(self, schema: StarSchema,
                 batch_size: int = vector.DEFAULT_BATCH_SIZE,
                 workers: int = 1):
        self.schema = schema
        self.batch_size = batch_size
        self.workers = max(1, workers)
        self.counters = PlanCounters()
        self._measure_vectors: dict[str, tuple[int, list]] = {}
        self._scan_rows: dict[str, tuple[int, list[int]]] = {}

    # -- rows ----------------------------------------------------------
    def materialize(self, plan: PlanNode) -> tuple[int, ...]:
        return tuple(sorted(self._rows(plan)))

    def _rows(self, node: PlanNode) -> list[int]:
        # operator spans are *inclusive* (a node's span covers its
        # child's, EXPLAIN ANALYZE style); counters stay exclusive
        if isinstance(node, Scan):
            with op_span(node) as osp:
                table = self.schema.database.table(node.table)
                with self.counters.timed("Scan") as out:
                    n = len(table)
                    for start in range(0, n, self.batch_size):
                        charge_rows(min(self.batch_size, n - start),
                                    "Scan")
                        out[1] += 1
                    out[0] = n
                    # the full-row selection vector is immutable
                    # downstream (filters build fresh lists), so repeat
                    # scans of an unchanged table reuse one list
                    cached = self._scan_rows.get(node.table)
                    if cached is not None and cached[0] == table._version:
                        rows = cached[1]
                    else:
                        rows = list(range(n))
                        self._scan_rows[node.table] = (table._version,
                                                       rows)
                osp.set_tag("rows", out[0])
                osp.set_tag("batches", out[1])
            return rows
        if isinstance(node, RowSet):
            with op_span(node) as osp:
                self.counters.record("RowSet", len(node.rows), batches=1)
                charge_rows(len(node.rows), "RowSet")
                osp.set_tag("rows", len(node.rows))
                osp.set_tag("batches", 1)
            return list(node.rows)
        if isinstance(node, SemiJoin):
            with op_span(node) as osp:
                child_rows = self._rows(node.child)
                if not child_rows:
                    osp.set_tag("rows", 0)
                    return child_rows
                check_deadline("SemiJoin")
                with self.counters.timed("SemiJoin") as out:
                    ref = AttributeRef(node.source_table, node.column)
                    selected = select_rows_by_values(self.schema, ref,
                                                     node.values)
                    facts = slice_facts(self.schema, node.source_table,
                                        selected, node.path)
                    rows = []
                    for batch in vector.batches(child_rows,
                                                self.batch_size):
                        kept = vector.refine_members(batch, facts)
                        charge_rows(len(kept), "SemiJoin")
                        rows.extend(kept)
                        out[1] += 1
                    out[0] = len(rows)
                osp.set_tag("rows", out[0])
                osp.set_tag("batches", out[1])
            return rows
        if isinstance(node, Filter):
            with op_span(node) as osp:
                child_rows = self._rows(node.child)
                if not child_rows:
                    osp.set_tag("rows", 0)
                    return child_rows
                check_deadline("Filter")
                with self.counters.timed("Filter") as out:
                    if node.predicate is not None:
                        table = self.schema.database.table(
                            _leaf(node).table)
                        node.predicate.validate(table)
                        rows = self._select_predicate(
                            table, node.predicate, child_rows, out)
                    else:
                        # None in the value set selects NULL-attribute
                        # rows
                        chunks = self.schema.fact_chunks(node.attr.path,
                                                         node.attr.column)
                        wanted = set(node.values)
                        rows = self._filter_chunks(
                            chunks, child_rows, out,
                            lambda c: c.may_match_in(wanted, True),
                            lambda c, sub: c.select_in(wanted, True, sub))
                    out[0] = len(rows)
                osp.set_tag("rows", out[0])
                osp.set_tag("batches", out[1])
                osp.set_tag("chunks_scanned", out[2])
                osp.set_tag("chunks_skipped", out[3])
            return rows
        raise SchemaError(f"not a row-producing plan node: {node!r}")

    # -- chunked filtering ---------------------------------------------
    def _filter_chunks(self, chunks, child_rows: list[int], out,
                       may_match, select, charge: bool = True) -> list[int]:
        """Narrow a selection chunk-at-a-time, skipping whole chunks the
        zone-map test ``may_match`` rules out.  ``out`` is the counter
        slot list (batches / chunks_scanned / chunks_skipped)."""
        rows: list[int] = []
        size = chunks[0].stop if chunks else self.batch_size
        for index, sub in vector.split_selection(child_rows, size):
            chunk = chunks[index]
            if not may_match(chunk):
                out[3] += 1
                continue
            kept = select(chunk,
                          None if len(sub) == len(chunk) else sub)
            if charge:
                charge_rows(len(kept), "Filter")
            rows.extend(kept)
            out[1] += 1
            out[2] += 1
        return rows

    def _select_predicate(self, table, predicate: Predicate,
                          child_rows: list[int], out,
                          charge: bool = True) -> list[int]:
        """Chunk-aware predicate evaluation: ``IN`` / ``BETWEEN`` over a
        bare column run on the table's encoded chunks with zone-map
        skipping (an ``AND`` delegates its first conjunct, then refines
        the survivors); anything else falls back to per-batch
        ``select_batch`` (every batch counts as a scanned chunk)."""
        if isinstance(predicate, In) and isinstance(predicate.expr, Col):
            chunks = table.column_chunks(predicate.expr.name)
            wanted = predicate.values
            return self._filter_chunks(
                chunks, child_rows, out,
                lambda c: c.may_match_in(wanted, False),
                lambda c, sub: c.select_in(wanted, False, sub),
                charge=charge)
        if isinstance(predicate, Between) and \
                isinstance(predicate.expr, Col):
            chunks = table.column_chunks(predicate.expr.name)
            low, high = predicate.low, predicate.high
            inclusive = predicate.inclusive_high
            return self._filter_chunks(
                chunks, child_rows, out,
                lambda c: c.may_match_range(low, high, inclusive),
                lambda c, sub: c.select_range(low, high, inclusive, sub),
                charge=charge)
        if isinstance(predicate, And) and predicate.parts:
            first = predicate.parts[0]
            rest = predicate.parts[1:]
            if isinstance(first, (In, Between)) and \
                    isinstance(first.expr, Col):
                # rows cut by the first conjunct are not charged: the
                # budget sees only the rows that survive the whole filter,
                # exactly like the single-kernel path
                selection = self._select_predicate(table, first,
                                                   child_rows, out,
                                                   charge=False)
                if not rest or not selection:
                    if charge:
                        charge_rows(len(selection), "Filter")
                    return selection
                return self._refine_batches(table, And(tuple(rest)),
                                            selection, out, charge)
        return self._refine_batches(table, predicate, child_rows, out,
                                    charge)

    def _refine_batches(self, table, predicate: Predicate,
                        child_rows: list[int], out,
                        charge: bool = True) -> list[int]:
        rows: list[int] = []
        for batch in vector.batches(child_rows, self.batch_size):
            kept = predicate.select_batch(table, batch)
            if charge:
                charge_rows(len(kept), "Filter")
            rows.extend(kept)
            out[1] += 1
            out[2] += 1
        return rows

    # -- aggregates ----------------------------------------------------
    def execute(self, plan: GroupAggregate):
        if isinstance(plan, MultiGroupAggregate):
            return self._execute_multi(plan)
        if not isinstance(plan, GroupAggregate):
            raise SchemaError("execute() takes a GroupAggregate plan")
        with op_span(plan) as osp:
            child = plan.child
            keys = ()
            if isinstance(child, Partition):
                keys = child.keys
                child = child.child
            rows = self._rows(child)
            if not rows:
                osp.set_tag("rows", 0)
                return _empty_result(plan)
            fn = AGGREGATES[plan.aggregate]
            measure = self._measure_values(plan)
            if not keys:
                check_deadline("GroupAggregate")
                with self.counters.timed("GroupAggregate") as out:
                    out[0] = len(rows)
                    out[1] = 1
                    osp.set_tag("rows", 1)
                    osp.set_tag("batches", 1)
                    return fn(vector.take(measure, rows))
            if len(keys) == 1 and len(rows) >= PARALLEL_MIN_ROWS:
                states = self._morsel_partition(plan.child, keys, rows,
                                                measure, plan.aggregate)
                charge_groups(len(states[0]), "Partition")
                with self.counters.timed("GroupAggregate") as out:
                    out[0] = len(states[0])
                    out[1] = 1
                    osp.set_tag("rows", out[0])
                    osp.set_tag("batches", 1)
                    return finalize_group_states(plan.aggregate,
                                                 states[0], plan.domain)
            groups = self._partition_groups(plan.child, keys, rows)
            charge_groups(len(groups), "Partition")
            with self.counters.timed("GroupAggregate") as out:
                out[0] = len(groups)
                out[1] = 1
                osp.set_tag("rows", len(groups))
                osp.set_tag("batches", 1)
                if plan.domain is not None:
                    return {
                        value: fn(vector.take(measure,
                                              groups.get(value, ())))
                        for value in plan.domain
                    }
                return {
                    value: fn(vector.take(measure, group_rows))
                    for value, group_rows in groups.items()
                }

    def _partition_groups(self, node, keys, rows: list[int]) -> dict:
        """key value → selection vector, built batch-at-a-time.

        Single-key plans group over the raw fact-aligned vector; composite
        keys are dictionary-encoded (:func:`~repro.relational.vector.
        pack_keys`) so the fold hashes small tuples exactly once per
        distinct key per batch.  ``node`` is the :class:`Partition` plan
        node (span attribution only).
        """
        check_deadline("Partition")
        with op_span(node) as osp, self.counters.timed("Partition") as out:
            vectors = [self.schema.fact_vector(k.path, k.column)
                       for k in keys]
            groups: dict = {}
            for batch in vector.batches(rows, self.batch_size):
                check_deadline("Partition")
                if len(vectors) == 1:
                    part = vector.group_rows(vectors[0], batch)
                else:
                    part = vector.group_rows_packed(vectors, batch)
                if groups:
                    for value, ids in part.items():
                        known = groups.get(value)
                        if known is None:
                            groups[value] = ids
                        else:
                            known.extend(ids)
                else:
                    groups = part
                out[1] += 1
            out[0] = len(groups)
            osp.set_tag("rows", out[0])
            osp.set_tag("batches", out[1])
        return groups

    def _execute_multi(self, plan: MultiGroupAggregate) -> dict:
        """The fused kernel: one pass over the child's rows updating one
        accumulator dict per key (instead of ``len(keys)`` passes); large
        row sets run morsel-parallel over the encoded chunks."""
        with op_span(plan) as osp:
            rows = self._rows(plan.child)
            if not rows:
                osp.set_tag("rows", 0)
                return _empty_multi_result(plan)
            check_deadline("MultiGroupAggregate")
            measure = self._measure_values(plan)
            keys = [key for key, _ in plan.branches()]

            if len(rows) >= PARALLEL_MIN_ROWS:
                with self.counters.timed("MultiGroupAggregate") as out:
                    states, morsels, chunks = self._morsel_states(
                        keys, rows, measure, plan.aggregate,
                        "MultiGroupAggregate")
                    folded = [
                        finalize_group_states(plan.aggregate, s)
                        for s in states
                    ]
                    out[0] = sum(len(groups) for groups in folded)
                    out[1] = chunks
                    out[2] = chunks
                    out[4] = morsels
                osp.set_tag("rows", out[0])
                osp.set_tag("batches", out[1])
                osp.set_tag("chunks_scanned", chunks)
                osp.set_tag("morsels", morsels)
                charge_groups(sum(len(groups) for groups in folded),
                              "MultiGroupAggregate")
                results = {key.fingerprint(): groups
                           for key, groups in zip(keys, folded)}
                return _fill_domains(plan, results)

            def on_chunk(chunk_rows: int) -> None:
                check_deadline("MultiGroupAggregate")
                counters_out[1] += 1

            with self.counters.timed("MultiGroupAggregate") as counters_out:
                vectors = [self.schema.fact_vector(k.path, k.column)
                           for k in keys]
                folded = fused_group_aggregates(
                    rows, vectors, measure, plan.aggregate,
                    on_chunk=on_chunk, chunk_size=self.batch_size,
                )
                results = {key.fingerprint(): groups
                           for key, groups in zip(keys, folded)}
                counters_out[0] = sum(len(groups) for groups in folded)
            osp.set_tag("rows", counters_out[0])
            osp.set_tag("batches", counters_out[1])
            charge_groups(sum(len(groups) for groups in folded),
                          "MultiGroupAggregate")
            return _fill_domains(plan, results)

    # -- morsel-driven parallel aggregation ---------------------------
    def _morsel_partition(self, node, keys, rows: list[int], measure,
                          aggregate: str) -> list[dict]:
        """The chunked/morselised :meth:`_partition_groups` analogue for
        one single-column key: returns merged per-group *states* (the
        caller finalizes), recording the same ``Partition`` span and
        counters the row-id path records."""
        check_deadline("Partition")
        with op_span(node) as osp, self.counters.timed("Partition") as out:
            states, morsels, chunks = self._morsel_states(
                keys, rows, measure, aggregate, "Partition")
            out[0] = len(states[0])
            out[1] = chunks
            out[2] = chunks
            out[4] = morsels
            osp.set_tag("rows", out[0])
            osp.set_tag("batches", out[1])
            osp.set_tag("chunks_scanned", chunks)
            osp.set_tag("morsels", morsels)
        return states

    def _morsel_states(self, keys, rows: list[int], measure,
                       aggregate: str, stage: str):
        """Run one fused scan-aggregate as morsels of whole chunks.

        The chunk list is packed into ~:data:`MORSEL_ROWS`-row morsels;
        each morsel accumulates fresh per-key partial states (deadline
        checked and rows charged per morsel, one tracer span per
        morsel).  With ``workers > 1`` the morsels run on a thread pool
        — each task under ``contextvars.copy_context()`` so the ambient
        budget and tracer propagate — and the partial states merge in
        morsel-index order, making the result deterministic and
        independent of completion order.  Serial execution accumulates
        into one shared state dict in row order, which is bit-identical
        to the pre-chunk fold semantics.

        Returns ``(states_list, num_morsels, num_chunks)``.
        """
        key_chunk_lists = [self.schema.fact_chunks(k.path, k.column)
                           for k in keys]
        row_ids = (None if len(rows) == self.schema.num_fact_rows
                   else rows)
        morsels = _pack_morsels(key_chunk_lists[0], row_ids)
        num_chunks = sum(len(items) for _, items in morsels)
        acc = AGGREGATE_STATES[aggregate]
        tracer = current_tracer()

        def run_morsel(index: int, total: int, items, states) -> None:
            with tracer.span("morsel") as span:
                span.set_tag("morsel", index)
                span.set_tag("rows", total)
                span.set_tag("stage", stage)
                check_deadline(stage)
                charge_rows(total, stage)
                for ci, sub in items:
                    for chunks, target in zip(key_chunk_lists, states):
                        accumulate_chunk(acc, target, chunks[ci],
                                         measure, sub)

        workers = min(self.workers, len(morsels))
        if workers < 2:
            states = [{} for _ in keys]
            for index, (total, items) in enumerate(morsels):
                run_morsel(index, total, items, states)
            return states, len(morsels), num_chunks

        def task(index: int, total: int, items) -> list[dict]:
            states = [{} for _ in keys]
            run_morsel(index, total, items, states)
            return states

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(copy_context().run, task, index, total, items)
                for index, (total, items) in enumerate(morsels)
            ]
            partials = [future.result() for future in futures]
        merged = partials[0]
        for other in partials[1:]:
            for into, part in zip(merged, other):
                merge_group_states(aggregate, into, part)
        return merged, len(morsels), num_chunks

    def _measure_values(self, plan: GroupAggregate) -> list:
        """Per-fact-row measure values, memoised by canonical measure SQL.

        The vector is computed through the expression batch seam
        (:meth:`~repro.relational.expressions.Expression.evaluate_batch`)
        — the same kernels the filter path uses — so there is exactly one
        measure-extraction code path.
        """
        key = plan.measure_sql
        fact = self.schema.database.table(_leaf(plan).table)
        cached = self._measure_vectors.get(key)
        if cached is not None and cached[0] == fact.version:
            return cached[1]
        if plan.measure_expr is None:
            values = [1] * len(fact)
        else:
            plan.measure_expr.validate(fact)
            values = plan.measure_expr.evaluate_batch(fact)
        self._measure_vectors[key] = (fact.version, values)
        return values

    def close(self) -> None:
        """Nothing to release."""


def _pack_morsels(chunks: Sequence, row_ids: list[int] | None
                  ) -> list[tuple[int, list[tuple[int, list[int] | None]]]]:
    """Pack a (possibly filtered) chunked selection into morsels.

    Returns ``(row_count, [(chunk_index, sub_selection_or_None), ...])``
    per morsel: runs of whole chunks (``row_ids=None``) or of per-chunk
    sub-selections, greedily grouped until a morsel reaches
    :data:`MORSEL_ROWS` candidate rows.  Morsels never split a chunk, so
    encoding fast paths stay available inside every morsel.
    """
    morsels: list[tuple[int, list]] = []
    current: list[tuple[int, list[int] | None]] = []
    count = 0
    if row_ids is None:
        pairs = ((index, None, len(chunk))
                 for index, chunk in enumerate(chunks))
    else:
        size = chunks[0].stop if chunks else 1
        pairs = (
            (index,
             None if len(sub) == len(chunks[index]) else sub,
             len(sub))
            for index, sub in vector.split_selection(row_ids, size)
        )
    for index, sub, rows in pairs:
        current.append((index, sub))
        count += rows
        if count >= MORSEL_ROWS:
            morsels.append((count, current))
            current = []
            count = 0
    if current:
        morsels.append((count, current))
    return morsels


# ----------------------------------------------------------------------
# sqlite backend
# ----------------------------------------------------------------------
class SqliteBackend:
    """Plan execution by SQL compilation against a sqlite3 mirror.

    The mirror is loaded lazily on first use (loading a 60k-row warehouse
    into sqlite costs noticeable startup time that differentiate-only
    sessions should not pay).

    **Thread affinity**: the mirror hands each thread its own sqlite3
    connection, so a live backend may be queried from worker threads
    (the session's ray-prefetch pool does).  But connections are only
    released at :meth:`close`, so short-lived threads leak one
    connection each — long-running servers must pin one session (and
    thus one backend) per *long-lived* worker thread.  Using a closed
    backend — from any thread — raises a typed
    :class:`~repro.relational.errors.BackendError` instead of silently
    reloading the mirror or letting ``sqlite3.ProgrammingError`` escape.
    """

    name = "sqlite"

    def __init__(self, schema: StarSchema, path: str = ":memory:"):
        self.schema = schema
        self.path = path
        self.counters = PlanCounters()
        self._mirror: SqliteMirror | None = None
        self._mirror_lock = threading.Lock()
        self._closed = False

    @property
    def mirror(self) -> SqliteMirror:
        """The sqlite3 mirror, loading it on first access (lock-guarded:
        worker threads may race to the first query)."""
        if self._closed:
            raise BackendError(
                "sqlite backend is closed; it does not reopen — build a "
                "new session (the service layer keeps one per worker "
                "thread)")
        if self._mirror is None:
            with self._mirror_lock:
                if self._mirror is None:
                    with self.counters.timed("MirrorLoad"):
                        self._mirror = SqliteMirror(self.schema.database,
                                                    self.path)
        return self._mirror

    # -- rows ----------------------------------------------------------
    def materialize(self, plan: PlanNode) -> tuple[int, ...]:
        leaf = _leaf(plan)
        if isinstance(leaf, RowSet) and not leaf.rows:
            return ()
        with op_span(plan) as osp:
            self._mark_sql_nodes(plan)
            table = self.schema.database.table(leaf.table)
            query = self._compile(plan)
            pk = table.primary_key
            if (pk is not None
                    and table.column(pk).type is ColumnType.INTEGER):
                sql = query.render_sql([f"DISTINCT f.{pk}"])
                rows = self._run(sql)
                rids = [table.lookup_pk(value) for (value,) in rows]
            else:
                sql = query.render_sql(["DISTINCT f.rowid"])
                rows = self._run(sql)
                rids = [value - 1 for (value,) in rows]
            osp.set_tag("rows", len(rids))
            osp.set_tag("batches", 1)
        return tuple(sorted(rids))

    def _mark_sql_nodes(self, plan: PlanNode) -> None:
        """Zero-duration marker spans for the *inner* nodes of a plan the
        compiler folds into one SQL statement — EXPLAIN can then show
        that those operators ran (once, inside SQL) even though no
        per-operator timing exists for them."""
        tracer = current_tracer()
        if not tracer.enabled:
            return
        node = getattr(plan, "child", None)
        while node is not None:
            with op_span(node) as osp:
                osp.set_tag("pushed_to_sql", True)
            node = getattr(node, "child", None)

    # -- aggregates ----------------------------------------------------
    def execute(self, plan: GroupAggregate):
        if isinstance(plan, MultiGroupAggregate):
            return self._execute_multi(plan)
        if not isinstance(plan, GroupAggregate):
            raise SchemaError("execute() takes a GroupAggregate plan")
        leaf = _leaf(plan)
        if isinstance(leaf, RowSet) and not leaf.rows:
            return _empty_result(plan)
        with op_span(plan) as osp:
            self._mark_sql_nodes(plan)
            query = self._compile(plan)
            result_rows = self._run(query.to_sql())
            osp.set_tag("rows", len(result_rows))
            osp.set_tag("batches", 1)
            if plan.grouped:
                charge_groups(len(result_rows), "GroupAggregate")
            if not plan.grouped:
                value = result_rows[0][0]
                return self._restore_aggregate(plan.aggregate, value)
            num_keys = len(plan.child.keys)
            result: dict = {}
            for row in result_rows:
                key = row[0] if num_keys == 1 else tuple(row[:num_keys])
                result[key] = self._restore_aggregate(plan.aggregate,
                                                      row[num_keys])
            if plan.domain is not None:
                fill = AGGREGATES[plan.aggregate](())
                for value in plan.domain:
                    result.setdefault(value, fill)
            return result

    def _execute_multi(self, plan: MultiGroupAggregate) -> dict:
        """One batched round-trip: a shared filtered CTE feeding one
        grouped select per key (instead of ``len(keys)`` full queries,
        each re-evaluating the row-set filter)."""
        leaf = _leaf(plan)
        if isinstance(leaf, RowSet) and not leaf.rows:
            return _empty_multi_result(plan)
        with op_span(plan) as osp:
            self._mark_sql_nodes(plan)
            with self.counters.timed("SqlCompile"):
                sql = compile_multi_plan(plan, self.schema.database)
            self.counters.record("MultiGroupAggregate")
            result_rows = self._run(sql)
            osp.set_tag("rows", len(result_rows))
            osp.set_tag("batches", 1)
        charge_groups(len(result_rows), "MultiGroupAggregate")
        branches = plan.branches()
        # UNION ALL loses declared column types, so converters never fire
        # — restore engine values (booleans, dates) per key column
        key_types = [
            self.schema.database.table(key.table).column(key.column).type
            for key, _ in branches
        ]
        raw: dict = {key.fingerprint(): {} for key, _ in branches}
        for index, value, agg in result_rows:
            key, _ = branches[index]
            raw[key.fingerprint()][from_sqlite(value, key_types[index])] = \
                self._restore_aggregate(plan.aggregate, agg)
        return _fill_domains(plan, raw)

    # -- helpers -------------------------------------------------------
    def _compile(self, plan: PlanNode):
        with self.counters.timed("SqlCompile"):
            query = compile_plan(plan, self.schema.database)
        for node_kind in _walk_kinds(plan):
            self.counters.record(node_kind)
        return query

    def _run(self, sql: str) -> list[tuple]:
        check_deadline("SqlExecute")
        with current_tracer().span("sqlite.execute") as span, \
                self.counters.timed("SqlExecute") as out:
            rows = self.mirror.execute(sql)
            out[0] = len(rows)
            span.set_tag("rows", len(rows))
        charge_rows(len(rows), "SqlExecute")
        return rows

    @staticmethod
    def _restore_aggregate(aggregate: str, value):
        """Align sqlite aggregate results with the in-memory fold: SUM of
        no (or all-NULL) inputs is 0 in memory, NULL in SQL."""
        if value is None and aggregate in ("sum", "count"):
            return AGGREGATES[aggregate](())
        return value

    def close(self) -> None:
        """Release the mirror; idempotent, and terminal — a closed
        backend refuses further queries with :class:`BackendError`."""
        self._closed = True
        if self._mirror is not None:
            self._mirror.close()
            self._mirror = None

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _walk_kinds(plan: PlanNode):
    """Node kinds of a plan tree, leaf-first (for counter attribution)."""
    node = plan
    kinds: list[str] = []
    while node is not None:
        kinds.append(node.kind)
        node = getattr(node, "child", None)
    return reversed(kinds)


BACKENDS = {
    "memory": InMemoryBackend,
    "sqlite": SqliteBackend,
}
"""Backend registry addressable by name (the CLI's ``--backend`` flag)."""


def create_backend(schema: StarSchema, backend: str | ExecutionBackend,
                   workers: int | None = None) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    ``workers`` sizes the in-memory backend's morsel pool; backends
    without intra-query parallelism ignore it.
    """
    if isinstance(backend, str):
        try:
            factory = BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"choose from {sorted(BACKENDS)}") from None
        if workers is not None and factory is InMemoryBackend:
            return factory(schema, workers=workers)
        return factory(schema)
    return backend
