"""Logical query plans with pluggable execution backends.

This package is the evaluation seam of the engine.  KDAP consumers (star
nets, subspaces, OLAP operators, facet building) describe their work as
logical plans — small frozen trees of :class:`Scan` / :class:`RowSet` /
:class:`SemiJoin` / :class:`Filter` / :class:`Partition` /
:class:`GroupAggregate` nodes — and hand them to a :class:`QueryEngine`,
which memoises results by canonical plan fingerprint and executes misses
on a pluggable :class:`ExecutionBackend`:

* ``memory`` — :class:`InMemoryBackend`, row-id operator chains over the
  schema's fact-aligned vectors (the engine's native path);
* ``sqlite`` — :class:`SqliteBackend`, compiling plans to SQL and running
  them on a sqlite3 mirror of the warehouse (the paper's §7 direction of
  delegating KDAP aggregation to an existing engine).

Public surface::

    from repro.plan import (
        QueryEngine, ExecutionBackend, InMemoryBackend, SqliteBackend,
        BACKENDS, create_backend,
        PlanNode, Scan, RowSet, SemiJoin, Filter, Partition,
        GroupAggregate, MultiGroupAggregate, AttrKey,
        PlanCache, CacheStats, PlanCounters, OpStats, FusionStats,
        compile_plan, compile_multi_plan,
    )
"""

from .backends import (
    BACKENDS,
    ExecutionBackend,
    InMemoryBackend,
    SqliteBackend,
    create_backend,
)
from .builders import (
    aggregate_plan,
    attr_key,
    multi_partition_plan,
    partition_plan,
    pivot_plan,
    rowset,
    subspace_aggregate_plan,
    subspace_partition_plan,
)
from .cache import CacheStats, PlanCache
from .compile import compile_multi_plan, compile_plan
from .counters import OpStats, PlanCounters
from .engine import FusionStats, QueryEngine
from .nodes import (
    AttrKey,
    Filter,
    GroupAggregate,
    MultiGroupAggregate,
    Partition,
    PlanNode,
    RowSet,
    Scan,
    SemiJoin,
    row_source,
)

__all__ = [
    "AttrKey",
    "BACKENDS",
    "CacheStats",
    "ExecutionBackend",
    "Filter",
    "FusionStats",
    "GroupAggregate",
    "InMemoryBackend",
    "MultiGroupAggregate",
    "OpStats",
    "Partition",
    "PlanCache",
    "PlanCounters",
    "PlanNode",
    "QueryEngine",
    "RowSet",
    "Scan",
    "SemiJoin",
    "SqliteBackend",
    "aggregate_plan",
    "attr_key",
    "compile_multi_plan",
    "compile_plan",
    "create_backend",
    "multi_partition_plan",
    "partition_plan",
    "pivot_plan",
    "row_source",
    "rowset",
    "subspace_aggregate_plan",
    "subspace_partition_plan",
]
