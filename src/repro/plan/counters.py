"""Per-operator execution counters.

Every backend records, for each plan operator it executes, how often it
ran, how many rows it produced, and how much wall time it consumed — so
benchmarks can attribute cost to plan nodes rather than to whole queries.

The chunked read path adds three storage-level counters: how many
encoded column chunks an operator actually read (``chunks_scanned``),
how many its zone maps let it discard without reading
(``chunks_skipped``), and how many parallel morsels a scan-aggregate was
split into (``morsels``; 0 for serial execution).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class OpStats:
    """Accumulated statistics for one plan operator."""

    calls: int = 0
    rows: int = 0
    seconds: float = 0.0
    batches: int = 0
    chunks_scanned: int = 0
    chunks_skipped: int = 0
    morsels: int = 0

    def record(self, rows: int, seconds: float, batches: int = 0,
               chunks_scanned: int = 0, chunks_skipped: int = 0,
               morsels: int = 0) -> None:
        self.calls += 1
        self.rows += rows
        self.seconds += seconds
        self.batches += batches
        self.chunks_scanned += chunks_scanned
        self.chunks_skipped += chunks_skipped
        self.morsels += morsels

    @property
    def rows_per_batch(self) -> float:
        """Mean rows produced per executed batch (0 when unbatched)."""
        if not self.batches:
            return 0.0
        return self.rows / self.batches


@dataclass
class PlanCounters:
    """Per-operator counters of one backend."""

    ops: dict[str, OpStats] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, op: str, rows: int = 0, seconds: float = 0.0,
               batches: int = 0, chunks_scanned: int = 0,
               chunks_skipped: int = 0, morsels: int = 0) -> None:
        """Add one execution of ``op`` (safe from backend worker threads)."""
        with self._lock:
            stats = self.ops.get(op)
            if stats is None:
                stats = self.ops[op] = OpStats()
            stats.record(rows, seconds, batches, chunks_scanned,
                         chunks_skipped, morsels)

    @contextmanager
    def timed(self, op: str):
        """Context manager recording one timed execution of ``op``.

        The yielded slot list receives ``[rows, batches, chunks_scanned,
        chunks_skipped, morsels]`` (all default to 0 when the caller
        leaves them untouched).
        """
        out = [0, 0, 0, 0, 0]
        start = time.perf_counter()
        try:
            yield out
        finally:
            self.record(op, out[0], time.perf_counter() - start, out[1],
                        out[2], out[3], out[4])

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot, sorted by operator name.

        Taken under the same lock :meth:`record` uses: backend worker
        threads may be mid-record while a stats consumer snapshots, and
        an unlocked read could see one operator's ``calls`` bumped but
        not yet its ``rows`` (or a dict mutated mid-iteration).
        """
        with self._lock:
            return {
                op: {"calls": s.calls, "rows": s.rows,
                     "seconds": round(s.seconds, 6),
                     "batches": s.batches,
                     "rows_per_batch": round(s.rows_per_batch, 1),
                     "chunks_scanned": s.chunks_scanned,
                     "chunks_skipped": s.chunks_skipped,
                     "morsels": s.morsels}
                for op, s in sorted(self.ops.items())
            }

    def reset(self) -> None:
        """Drop all accumulated statistics (atomic against recorders)."""
        with self._lock:
            self.ops.clear()

    @property
    def total_calls(self) -> int:
        with self._lock:
            return sum(s.calls for s in self.ops.values())
