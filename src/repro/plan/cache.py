"""Fingerprint-keyed plan-result caching with LRU eviction.

The cache is deliberately backend-agnostic: keys are plan fingerprints
(:meth:`repro.plan.nodes.PlanNode.fingerprint`), values are whatever the
backend produced (row tuples, group dicts, scalars).  Any backend plugged
into the engine therefore benefits from the same memoisation, and two
consumers that build semantically identical plans share one entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.total if self.total else 0.0


_MISSING = object()


class PlanCache:
    """An LRU mapping from plan fingerprints to execution results.

    ``max_entries`` is enforced strictly: inserting into a full cache
    evicts the least-recently-used entry (and counts it in
    :attr:`CacheStats.evictions`).
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        # LRU reordering mutates the OrderedDict on *reads*, so lookups
        # from engine worker threads (parallel differentiate) must not
        # interleave with each other or with inserts
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, fingerprint, default=None):
        """The cached result, or ``default``; refreshes LRU order and counts
        the lookup as a hit or miss.  Pass a private sentinel as ``default``
        when None is a legitimate cached value."""
        with self._lock:
            value = self._entries.get(fingerprint, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(fingerprint)
            self.stats.hits += 1
            return value

    def put(self, fingerprint, value) -> None:
        """Store a result, evicting the LRU entry when full."""
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                self._entries[fingerprint] = value
                return
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[fingerprint] = value

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint) -> bool:
        return fingerprint in self._entries
