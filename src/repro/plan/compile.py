"""Compile logical plans to :class:`~repro.relational.sql.JoinQuery`.

This is the SQL half of the plan seam: the same logical tree the
in-memory backend interprets as row-id operator chains is rendered here
as a fact-rooted join query, which :mod:`repro.relational.sql` turns into
SQL text for any SQL engine (the bundled sqlite backend, or external
tooling).

Alias assignment implements the paper's merge semantics: walking each
semi-join's path fact → hit table, a step reuses an existing alias when a
semi-join of the *same dimension* already took the identical step from
the same alias; otherwise it mints a fresh alias.  Group-by / filter
attribute paths get their own alias group and LEFT JOINs, so rows with
dangling foreign keys surface as NULL keys instead of disappearing.
"""

from __future__ import annotations

from ..relational.catalog import Database
from ..relational.errors import SchemaError
from ..relational.expressions import Col, In, IsNull, Not, Or, Predicate, isin
from ..relational.sql import (
    AliasFilter,
    JoinEdge,
    JoinQuery,
    qualify_measure,
    render_batched_sql,
)
from ..relational.table import Table
from ..relational.types import ColumnType
from .nodes import (
    AttrKey,
    Filter,
    GroupAggregate,
    MultiGroupAggregate,
    Partition,
    PlanNode,
    RowSet,
    Scan,
    SemiJoin,
)

_ATTR_GROUP = "__attr__"
"""Alias-merge group for attribute paths (distinct from every dimension)."""


def adapt_value(value, column_type: ColumnType):
    """Adapt one engine value for SQL rendering (bools become 0/1 so the
    comparison does not depend on the engine's TRUE/FALSE spelling)."""
    if column_type is ColumnType.BOOLEAN and isinstance(value, bool):
        return int(value)
    return value


class _Compiler:
    """One compilation pass over a plan tree."""

    def __init__(self, database: Database):
        self.database = database
        self.query: JoinQuery | None = None
        # (group, alias_of_source, fk_name, towards_parent) -> alias
        self._step_alias: dict[tuple, str] = {}
        self._alias_count = 0

    # ------------------------------------------------------------------
    # entry
    # ------------------------------------------------------------------
    def compile(self, plan: PlanNode) -> JoinQuery:
        if isinstance(plan, GroupAggregate):
            child = plan.child
            keys: tuple[AttrKey, ...] = ()
            if isinstance(child, Partition):
                keys = child.keys
                child = child.child
            self._rows(child)
            self.query.aggregate = plan.aggregate
            self.query.measure_sql = qualify_measure(plan.measure_sql, "f")
            self.query.measure_expr = plan.measure_expr
            for key in keys:
                alias = self._attr_alias(key)
                self.query.filters.append(
                    AliasFilter(alias, Not(IsNull(Col(key.column)))))
                self.query.group_by.append((alias, key.column))
            if plan.domain is not None:
                if len(keys) != 1:
                    raise SchemaError(
                        "domain restriction requires exactly one "
                        "partition key")
                key = keys[0]
                alias = self.query.group_by[0][0]
                self.query.filters.append(AliasFilter(
                    alias,
                    self._adapted_isin(key.table, key.column, plan.domain),
                ))
        else:
            self._rows(plan)
        return self.query

    # ------------------------------------------------------------------
    # row-producing nodes
    # ------------------------------------------------------------------
    def _rows(self, node: PlanNode) -> None:
        if isinstance(node, Scan):
            self.query = JoinQuery(fact_table=node.table, fact_alias="f")
            return
        if isinstance(node, RowSet):
            self.query = JoinQuery(fact_table=node.table, fact_alias="f")
            predicate = rowset_predicate(
                self.database.table(node.table), node.rows)
            if predicate is not None:
                self.query.filters.append(AliasFilter("f", predicate))
            return
        if isinstance(node, SemiJoin):
            self._rows(node.child)
            alias = "f"
            group = (node.dimension
                     if node.dimension is not None else _ATTR_GROUP)
            for step in node.path.reversed().steps:
                alias = self._edge_alias(group, alias, step, left=False)
            self.query.filters.append(AliasFilter(
                alias,
                self._adapted_isin(node.source_table, node.column,
                                   node.values),
            ))
            return
        if isinstance(node, Filter):
            self._rows(node.child)
            if node.predicate is not None:
                self.query.filters.append(AliasFilter("f", node.predicate))
                return
            attr = node.attr
            alias = self._attr_alias(attr)
            values = [v for v in node.values if v is not None]
            parts: list[Predicate] = []
            if values:
                parts.append(
                    self._adapted_isin(attr.table, attr.column, values))
            if len(values) != len(node.values):  # None was requested
                parts.append(IsNull(Col(attr.column)))
            if not parts:
                raise SchemaError("attribute filter needs at least one value")
            self.query.filters.append(
                AliasFilter(alias, Or.of(*parts)))
            return
        raise SchemaError(f"not a row-producing plan node: {node!r}")

    # ------------------------------------------------------------------
    # aliases and edges
    # ------------------------------------------------------------------
    def _edge_alias(self, group: str, alias: str, step,
                    left: bool) -> str:
        key = (group, alias, step.fk.name, step.towards_parent)
        existing = self._step_alias.get(key)
        if existing is not None:
            return existing
        self._alias_count += 1
        new_alias = f"t{self._alias_count}"
        self.query.edges.append(JoinEdge(
            left_alias=alias,
            left_column=step.source_column,
            right_table=step.target,
            right_alias=new_alias,
            right_column=step.target_column,
            left=left,
        ))
        self._step_alias[key] = new_alias
        return new_alias

    def _attr_alias(self, attr: AttrKey) -> str:
        """Alias of the table holding a fact-aligned attribute, joining
        along its path (fact-table attributes stay on alias ``f``)."""
        alias = "f"
        for step in attr.path.steps:
            alias = self._edge_alias(_ATTR_GROUP, alias, step, left=True)
        return alias

    def _adapted_isin(self, table: str, column: str, values) -> In:
        """An IN predicate with engine values adapted for SQL rendering."""
        column_type = self.database.table(table).column(column).type
        return isin(column, [adapt_value(v, column_type) for v in values])


def rowset_predicate(table: Table, rows: tuple[int, ...]) -> Predicate | None:
    """A fact-alias predicate selecting exactly ``rows`` of ``table``.

    Returns None when the row set covers the whole table (no filter
    needed).  Uses the integer primary key when one exists; otherwise
    falls back to sqlite's implicit ``rowid`` (1-based insertion order),
    which is stable because tables are loaded in row-id order.
    """
    if len(rows) == len(table):
        return None
    pk = table.primary_key
    if pk is not None and table.column(pk).type is ColumnType.INTEGER:
        values = table.column_values(pk)
        return isin(pk, tuple(values[r] for r in rows))
    return isin("rowid", tuple(r + 1 for r in rows))


def compile_plan(plan: PlanNode, database: Database) -> JoinQuery:
    """Render a logical plan as a fact-rooted join query."""
    return _Compiler(database).compile(plan)


_BASE_CTE = "kdap_base"
"""Name of the shared filtered CTE in batched multi-aggregate SQL."""


def compile_multi_plan(plan: MultiGroupAggregate,
                       database: Database) -> str:
    """Render a fused multi-aggregate plan as **one** batched statement.

    The child's row selection compiles once into a CTE (``SELECT f.*``
    with the child's joins/filters — the expensive part, e.g. a large
    row-id IN list, is evaluated a single time); each key then becomes
    one grouped select over the CTE, UNION-ALL'ed with a leading branch
    index so the caller can route result rows back to their keys.
    Branch order is the plan's canonical (fingerprint-sorted) order.
    """
    base = _Compiler(database).compile(plan.child)
    select_rows = f"{base.fact_alias}.*"
    if base.edges:
        # semi-join edges are many-to-one fact → dimension, but DISTINCT
        # keeps the CTE a row *set* even for unexpected join shapes
        select_rows = "DISTINCT " + select_rows
    cte_sql = base.render_sql([select_rows])
    branches: list[str] = []
    for index, (key, domain) in enumerate(plan.branches()):
        single = GroupAggregate(
            child=Partition(Scan(_BASE_CTE), (key,)),
            aggregate=plan.aggregate,
            measure_sql=plan.measure_sql,
            measure_expr=plan.measure_expr,
            domain=domain,
        )
        query = _Compiler(database).compile(single)
        alias, column = query.group_by[0]
        branches.append(query.render_sql(
            [f"{index} AS branch", f"{alias}.{column} AS key",
             f"{query.aggregate.upper()}({query.measure_sql}) AS agg"],
            [f"{alias}.{column}"],
        ))
    return render_batched_sql(_BASE_CTE, cte_sql, branches)
