"""The query engine: plans + a backend + a fingerprint-keyed cache.

:class:`QueryEngine` is the single evaluation seam between the KDAP
layers (star nets, subspaces, OLAP operators, facets) and query
execution.  Consumers describe *what* they need as a logical plan (built
via :mod:`repro.plan.builders`); the engine memoises results by plan
fingerprint and delegates cache misses to the configured
:class:`~repro.plan.backends.ExecutionBackend`.

Because cache keys are canonical fingerprints rather than per-consumer
ad-hoc keys, a ray materialised for subspace-size preview, the same ray
evaluated inside a star net, and a facet roll-up over the resulting rows
all share one cache — repeated exploration of related interpretations
hits instead of recomputing, on either backend.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..relational.operators import AGGREGATES
from ..resilience.budget import check_deadline
from ..warehouse.subspace import Subspace
from .backends import ExecutionBackend, create_backend
from .builders import (
    attr_key,
    pivot_plan,
    rowset,
    subspace_aggregate_plan,
    subspace_partition_plan,
)
from .cache import CacheStats, PlanCache
from .nodes import Filter, GroupAggregate, PlanNode, Scan, SemiJoin

_MISS = object()


class QueryEngine:
    """Evaluate logical plans with caching over a pluggable backend."""

    def __init__(self, schema, backend: str | ExecutionBackend = "memory",
                 max_cache_entries: int = 4096):
        self.schema = schema
        self.backend = create_backend(schema, backend)
        self.cache = PlanCache(max_entries=max_cache_entries)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def counters(self):
        """The backend's per-operator execution counters."""
        return self.backend.counters

    def close(self) -> None:
        self.backend.close()

    def __repr__(self) -> str:
        return (f"QueryEngine(backend={self.backend_name!r}, "
                f"cached={len(self.cache)})")

    # ------------------------------------------------------------------
    # primitive evaluation (cached)
    # ------------------------------------------------------------------
    def materialize(self, plan: PlanNode) -> tuple[int, ...]:
        """Row ids selected by a row-producing plan (cached)."""
        fingerprint = plan.fingerprint()
        cached = self.cache.get(fingerprint, _MISS)
        if cached is not _MISS:
            return cached
        check_deadline("materialize")
        # a failing backend call leaves the cache untouched: partial or
        # poisoned entries must never be served to later callers
        rows = self.backend.materialize(plan)
        self.cache.put(fingerprint, rows)
        return rows

    def execute(self, plan: GroupAggregate):
        """Aggregate result of a plan (cached; dicts are copied on the
        way out so callers cannot corrupt cache entries)."""
        fingerprint = plan.fingerprint()
        cached = self.cache.get(fingerprint, _MISS)
        if cached is _MISS:
            check_deadline("execute")
            cached = self.backend.execute(plan)
            self.cache.put(fingerprint, cached)
        return dict(cached) if isinstance(cached, dict) else cached

    # ------------------------------------------------------------------
    # star-net evaluation
    # ------------------------------------------------------------------
    def evaluate(self, star_net) -> Subspace:
        """SUP(N): the subspace selected by a star net, engine-bound so
        later aggregation over it routes back through this engine."""
        check_deadline("evaluate")
        rows = self.materialize(star_net.to_plan(self.schema))
        return Subspace(self.schema, rows, label=str(star_net), engine=self)

    def semijoin_rows(self, source_table: str, column: str,
                      values: Iterable, path,
                      dimension: str | None = None) -> tuple[int, ...]:
        """Fact rows reached by one semi-join ray (cached — the same ray
        inside a full star-net plan shares the per-ray entry's work only
        indirectly, but repeated previews of a ray are free)."""
        plan = SemiJoin(
            child=Scan(self.schema.fact_table),
            source_table=source_table,
            column=column,
            values=tuple(values),
            path=path,
            dimension=dimension,
        )
        return self.materialize(plan)

    def bind(self, subspace: Subspace) -> Subspace:
        """The same subspace with aggregation bound to this engine."""
        if subspace.engine is self:
            return subspace
        return Subspace(subspace.schema, subspace.fact_rows,
                        subspace.label, engine=self)

    # ------------------------------------------------------------------
    # subspace aggregation
    # ------------------------------------------------------------------
    def subspace_aggregate(self, subspace: Subspace, measure_name: str):
        """G(DS') — the measure aggregated over a subspace."""
        measure = self.schema.measures[measure_name]
        if subspace.is_empty:
            return AGGREGATES[measure.aggregate](())
        plan = subspace_aggregate_plan(self.schema, subspace.fact_rows,
                                       measure)
        return self.execute(plan)

    def subspace_partition_aggregates(
        self,
        subspace: Subspace,
        gb,
        measure_name: str,
        domain: Iterable | None = None,
    ) -> dict:
        """value → aggregated measure per group (NULL keys dropped; with a
        ``domain``, exactly those categories, absent ones aggregating over
        zero rows)."""
        measure = self.schema.measures[measure_name]
        domain_key = None if domain is None else tuple(domain)
        if subspace.is_empty:
            if domain_key is None:
                return {}
            fill = AGGREGATES[measure.aggregate](())
            return {value: fill for value in domain_key}
        plan = subspace_partition_plan(self.schema, subspace.fact_rows,
                                       gb, measure, domain=domain_key)
        return self.execute(plan)

    def pivot_aggregates(self, subspace: Subspace, rows_gb, cols_gb,
                         measure_name: str) -> dict:
        """(row value, column value) → aggregated measure."""
        if subspace.is_empty:
            return {}
        measure = self.schema.measures[measure_name]
        plan = pivot_plan(self.schema, subspace.fact_rows,
                          rows_gb, cols_gb, measure)
        return self.execute(plan)

    # ------------------------------------------------------------------
    # subspace filtering (slice / dice)
    # ------------------------------------------------------------------
    def filter_rows(self, subspace: Subspace,
                    selections: Sequence[tuple] ) -> tuple[int, ...]:
        """Rows of ``subspace`` matching every ``(gb, values)`` selection."""
        if subspace.is_empty:
            return ()
        plan: PlanNode = rowset(self.schema, subspace.fact_rows)
        for gb, values in selections:
            plan = Filter(plan, attr=attr_key(gb), values=tuple(values))
        return self.materialize(plan)
