"""The query engine: plans + a backend + a fingerprint-keyed cache.

:class:`QueryEngine` is the single evaluation seam between the KDAP
layers (star nets, subspaces, OLAP operators, facets) and query
execution.  Consumers describe *what* they need as a logical plan (built
via :mod:`repro.plan.builders`); the engine memoises results by plan
fingerprint and delegates cache misses to the configured
:class:`~repro.plan.backends.ExecutionBackend`.

Because cache keys are canonical fingerprints rather than per-consumer
ad-hoc keys, a ray materialised for subspace-size preview, the same ray
evaluated inside a star net, and a facet roll-up over the resulting rows
all share one cache — repeated exploration of related interpretations
hits instead of recomputing, on either backend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..obs.metrics import current_registry
from ..obs.tracer import current_request_id, current_tracer, plan_digest
from ..relational.operators import AGGREGATES
from ..resilience.budget import check_deadline
from ..warehouse.subspace import Subspace
from .backends import ExecutionBackend, create_backend
from .builders import (
    attr_key,
    multi_partition_plan,
    pivot_plan,
    rowset,
    subspace_aggregate_plan,
    subspace_partition_plan,
)
from .cache import CacheStats, PlanCache
from .nodes import Filter, GroupAggregate, PlanNode, Scan, SemiJoin

_MISS = object()


@dataclass
class FusionStats:
    """How much work multi-aggregate fusion saved.

    ``scans_saved`` is the headline number: each fused query answers
    ``attributes_fused`` group-bys in one pass where the unfused path
    would have run one scan (or one SQL round-trip) per attribute.
    """

    fused_queries: int = 0
    attributes_fused: int = 0

    def record(self, attributes: int) -> None:
        self.fused_queries += 1
        self.attributes_fused += attributes

    @property
    def scans_saved(self) -> int:
        return self.attributes_fused - self.fused_queries


class QueryEngine:
    """Evaluate logical plans with caching over a pluggable backend.

    ``fuse_partitions`` controls whether
    :meth:`multi_partition_aggregates` actually fuses: with the default
    True, N group-bys over one subspace become a single
    ``MultiGroupAggregate`` plan (one scan in memory, one batched
    statement on sqlite); False falls back to N independent single-key
    queries — kept for benchmarking the fusion win and as an escape
    hatch.
    """

    def __init__(self, schema, backend: str | ExecutionBackend = "memory",
                 max_cache_entries: int = 4096, fuse_partitions: bool = True,
                 workers: int | None = None,
                 materialize: bool | object = False):
        self.schema = schema
        self.backend = create_backend(schema, backend, workers=workers)
        self.cache = PlanCache(max_entries=max_cache_entries)
        self.fuse_partitions = fuse_partitions
        self.fusion = FusionStats()
        self._fusion_lock = threading.Lock()
        # the materialization tier answers partition aggregates from
        # mergeable states (exact views or lattice roll-ups) before the
        # backend is consulted; off by default at this level — sessions
        # opt in — so counter-sensitive consumers see raw execution.
        # Pass a MaterializationTier instance to share one tier (and its
        # admission history) across engines.
        if materialize is True:
            from ..warehouse.materialize import MaterializationTier

            self.tier = MaterializationTier(schema)
        elif materialize is False or materialize is None:
            self.tier = None
        else:
            # identity checks above, not truthiness: an empty shared
            # tier is len() == 0 and must still be adopted
            self.tier = materialize

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def counters(self):
        """The backend's per-operator execution counters."""
        return self.backend.counters

    def close(self) -> None:
        self.backend.close()

    def __repr__(self) -> str:
        return (f"QueryEngine(backend={self.backend_name!r}, "
                f"cached={len(self.cache)})")

    # ------------------------------------------------------------------
    # primitive evaluation (cached)
    # ------------------------------------------------------------------
    def cache_key(self, fingerprint):
        """Epoch-qualified plan-cache key for a plan fingerprint.

        Plan fingerprints are pure descriptions of the question (a
        ``Scan`` of the fact table prints the same before and after an
        append), so raw fingerprints could serve stale rows once tables
        grow.  Every cache access is therefore keyed by the database
        epoch — the sum of all table version counters, monotonic under
        the append-only contract — and a mutation simply strands the old
        epoch's entries for LRU eviction.  External caches that share
        entries with this engine (:class:`~repro.warehouse.cube_cache.
        AggregateCache`) must key through this method too.
        """
        return (sum(table.version
                    for table in self.schema.database.tables()),
                fingerprint)

    def materialize(self, plan: PlanNode) -> tuple[int, ...]:
        """Row ids selected by a row-producing plan (cached)."""
        key = self.cache_key(plan.fingerprint())
        cached = self.cache.get(key, _MISS)
        if cached is not _MISS:
            self._note_cache(plan, hit=True, kind="materialize")
            return cached
        self._note_cache(plan, hit=False, kind="materialize")
        check_deadline("materialize")
        # a failing backend call leaves the cache untouched: partial or
        # poisoned entries must never be served to later callers
        with current_tracer().span("plan.materialize",
                                   **self._request_tag()) as span:
            rows = self.backend.materialize(plan)
            span.set_tag("rows", len(rows))
        self.cache.put(key, rows)
        return rows

    def execute(self, plan: GroupAggregate):
        """Aggregate result of a plan (cached; dicts are copied on the
        way out so callers cannot corrupt cache entries)."""
        key = self.cache_key(plan.fingerprint())
        cached = self.cache.get(key, _MISS)
        if cached is _MISS:
            self._note_cache(plan, hit=False, kind="execute")
            check_deadline("execute")
            with current_tracer().span("plan.execute",
                                       **self._request_tag()):
                cached = self.backend.execute(plan)
            self.cache.put(key, cached)
        else:
            self._note_cache(plan, hit=True, kind="execute")
        return dict(cached) if isinstance(cached, dict) else cached

    @staticmethod
    def _request_tag() -> dict:
        """``{"request": id}`` when a service request is ambient.

        Engine spans carry the request id so one shared trace — or the
        per-request trace the service writes — can attribute backend
        work to the HTTP request that caused it, across worker threads.
        """
        request_id = current_request_id()
        return {} if request_id is None else {"request": request_id}

    def _note_cache(self, plan: PlanNode, hit: bool, kind: str) -> None:
        """Record one plan-cache lookup in the ambient metrics registry
        and (when tracing) as a zero-duration marker span so EXPLAIN can
        attribute cache hits to plan nodes."""
        current_registry().counter(
            "kdap.plan.cache.hits" if hit
            else "kdap.plan.cache.misses").inc()
        tracer = current_tracer()
        if tracer.enabled and hit:
            with tracer.span(f"plan.{kind}", cached=True,
                             fp=plan_digest(plan),
                             **self._request_tag()):
                pass

    def _note_materialized(self, plan: PlanNode) -> None:
        """Marker span for an aggregate answered by the materialization
        tier (no backend scan ran); EXPLAIN ANALYZE attributes it to the
        plan node like a cache hit, under its own ``materialized`` tag."""
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span("plan.execute", materialized=True,
                             fp=plan_digest(plan),
                             **self._request_tag()):
                pass

    # ------------------------------------------------------------------
    # star-net evaluation
    # ------------------------------------------------------------------
    def evaluate(self, star_net) -> Subspace:
        """SUP(N): the subspace selected by a star net, engine-bound so
        later aggregation over it routes back through this engine."""
        check_deadline("evaluate")
        rows = self.materialize(star_net.to_plan(self.schema))
        return Subspace(self.schema, rows, label=str(star_net), engine=self)

    def semijoin_rows(self, source_table: str, column: str,
                      values: Iterable, path,
                      dimension: str | None = None) -> tuple[int, ...]:
        """Fact rows reached by one semi-join ray (cached — the same ray
        inside a full star-net plan shares the per-ray entry's work only
        indirectly, but repeated previews of a ray are free)."""
        plan = SemiJoin(
            child=Scan(self.schema.fact_table),
            source_table=source_table,
            column=column,
            values=tuple(values),
            path=path,
            dimension=dimension,
        )
        return self.materialize(plan)

    def bind(self, subspace: Subspace) -> Subspace:
        """The same subspace with aggregation bound to this engine."""
        if subspace.engine is self:
            return subspace
        return Subspace(subspace.schema, subspace.fact_rows,
                        subspace.label, engine=self)

    # ------------------------------------------------------------------
    # subspace aggregation
    # ------------------------------------------------------------------
    def subspace_aggregate(self, subspace: Subspace, measure_name: str):
        """G(DS') — the measure aggregated over a subspace."""
        measure = self.schema.measures[measure_name]
        if subspace.is_empty:
            return AGGREGATES[measure.aggregate](())
        plan = subspace_aggregate_plan(self.schema, subspace.fact_rows,
                                       measure)
        return self.execute(plan)

    def subspace_partition_aggregates(
        self,
        subspace: Subspace,
        gb,
        measure_name: str,
        domain: Iterable | None = None,
    ) -> dict:
        """value → aggregated measure per group (NULL keys dropped; with a
        ``domain``, exactly those categories, absent ones aggregating over
        zero rows)."""
        measure = self.schema.measures[measure_name]
        domain_key = None if domain is None else tuple(domain)
        if subspace.is_empty:
            if domain_key is None:
                return {}
            fill = AGGREGATES[measure.aggregate](())
            return {value: fill for value in domain_key}
        plan = subspace_partition_plan(self.schema, subspace.fact_rows,
                                       gb, measure, domain=domain_key)
        if self.tier is None:
            return self.execute(plan)
        key = self.cache_key(plan.fingerprint())
        if key in self.cache:  # stat-free peek; execute() counts the hit
            return self.execute(plan)
        answer = self.tier.answer(subspace.fact_rows, gb, measure_name,
                                  domain=domain_key)
        if answer is not None:
            self._note_materialized(plan)
            self.cache.put(key, answer)
            return dict(answer)
        result = self.execute(plan)
        self.tier.note_miss(subspace.fact_rows, gb, measure_name,
                            plan.fingerprint())
        return result

    def multi_partition_aggregates(
        self,
        subspace: Subspace,
        gbs: Sequence,
        measure_name: str,
        domains: Sequence[Iterable | None] | None = None,
    ) -> list[dict]:
        """One value→aggregate dict per group-by, over one subspace.

        Semantically identical to calling
        :meth:`subspace_partition_aggregates` once per ``gb``, but with
        :attr:`fuse_partitions` on the engine executes a single
        ``MultiGroupAggregate`` plan: the subspace's rows are scanned
        (memory) or shipped to SQL (sqlite) **once** for all group-bys
        instead of once per group-by.  ``domains``, when given, aligns
        with ``gbs`` (None entries meaning unrestricted).
        """
        gbs = list(gbs)
        if domains is None:
            domain_keys: list[tuple | None] = [None] * len(gbs)
        else:
            domain_keys = [None if d is None else tuple(d) for d in domains]
            if len(domain_keys) != len(gbs):
                raise ValueError("domains must align one-to-one with gbs")
        if not gbs:
            return []
        measure = self.schema.measures[measure_name]
        if subspace.is_empty:
            fill = AGGREGATES[measure.aggregate](())
            return [
                {} if dk is None else {value: fill for value in dk}
                for dk in domain_keys
            ]
        if not self.fuse_partitions:
            return [
                self.subspace_partition_aggregates(
                    subspace, gb, measure_name, domain=dk)
                for gb, dk in zip(gbs, domain_keys)
            ]
        results: list[dict | None] = [None] * len(gbs)
        # key fingerprint -> (gb, domain, single fp, result slots);
        # duplicates of the same attribute share a branch when domains agree
        fused: dict[tuple, tuple] = {}
        singles: list[int] = []
        for index, (gb, dk) in enumerate(zip(gbs, domain_keys)):
            if dk is not None and not dk:
                # an empty domain aggregates over nothing; answering it
                # here also keeps ``IN ()`` out of the SQL path
                results[index] = {}
                continue
            fingerprint = attr_key(gb).fingerprint()
            entry = fused.get(fingerprint)
            if entry is None:
                # a branch already answered as a *single* partition plan
                # (by an earlier single or fused call) is served from
                # cache rather than re-fused: fusion never loses the
                # cross-call sharing the single path would have had
                single = subspace_partition_plan(
                    self.schema, subspace.fact_rows, gb, measure,
                    domain=dk)
                single_fp = single.fingerprint()
                single_key = self.cache_key(single_fp)
                cached = self.cache.get(single_key, _MISS)
                if cached is not _MISS:
                    results[index] = dict(cached)
                    continue
                if self.tier is not None:
                    answer = self.tier.answer(subspace.fact_rows, gb,
                                              measure_name, domain=dk)
                    if answer is not None:
                        self._note_materialized(single)
                        self.cache.put(single_key, answer)
                        results[index] = dict(answer)
                        continue
                fused[fingerprint] = (gb, dk, single_fp, [index])
            elif entry[1] == dk:
                entry[3].append(index)
            else:  # same attribute, different domain: separate query
                singles.append(index)
        if len(fused) == 1:
            # a lone branch is just a single partition query; routing it
            # through the single-key path shares that cache entry
            (gb, dk, _, slots), = fused.values()
            groups = self.subspace_partition_aggregates(
                subspace, gb, measure_name, domain=dk)
            for slot in slots:
                results[slot] = dict(groups)
        elif fused:
            plan_items = list(fused.values())
            plan = multi_partition_plan(
                self.schema, subspace.fact_rows,
                [gb for gb, _, _, _ in plan_items], measure,
                domains=[dk for _, dk, _, _ in plan_items])
            executed = self.execute(plan)
            with self._fusion_lock:
                self.fusion.record(len(plan_items))
            for fingerprint, (gb, dk, single_fp, slots) in fused.items():
                groups = executed[fingerprint]
                # seed the equivalent single-plan entry so later
                # single-key (or partially-overlapping fused) calls hit
                self.cache.put(self.cache_key(single_fp), groups)
                if self.tier is not None:
                    self.tier.note_miss(subspace.fact_rows, gb,
                                        measure_name, single_fp)
                for slot in slots:
                    # inner dicts belong to the cache entry: copy out
                    results[slot] = dict(groups)
        for index in singles:
            results[index] = self.subspace_partition_aggregates(
                subspace, gbs[index], measure_name,
                domain=domain_keys[index])
        return results

    def pivot_aggregates(self, subspace: Subspace, rows_gb, cols_gb,
                         measure_name: str) -> dict:
        """(row value, column value) → aggregated measure."""
        if subspace.is_empty:
            return {}
        measure = self.schema.measures[measure_name]
        plan = pivot_plan(self.schema, subspace.fact_rows,
                          rows_gb, cols_gb, measure)
        return self.execute(plan)

    # ------------------------------------------------------------------
    # subspace filtering (slice / dice)
    # ------------------------------------------------------------------
    def filter_rows(self, subspace: Subspace,
                    selections: Sequence[tuple] ) -> tuple[int, ...]:
        """Rows of ``subspace`` matching every ``(gb, values)`` selection."""
        if subspace.is_empty:
            return ()
        plan: PlanNode = rowset(self.schema, subspace.fact_rows)
        for gb, values in selections:
            plan = Filter(plan, attr=attr_key(gb), values=tuple(values))
        return self.materialize(plan)
