"""Helpers building the plans the KDAP layers need.

Every consumer of the plan layer (sessions, subspaces, OLAP operators,
the aggregate cache) builds its plans through these functions, so that
semantically identical requests produce byte-identical fingerprints and
share cache entries.

The ``schema`` / ``gb`` / ``measure`` parameters are duck-typed against
:mod:`repro.warehouse.schema` (``StarSchema`` / ``GroupByAttribute`` /
``Measure``); this module deliberately avoids importing the warehouse
package to keep the plan layer below it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .nodes import (
    AttrKey,
    GroupAggregate,
    MultiGroupAggregate,
    Partition,
    PlanNode,
    RowSet,
)


def attr_key(gb) -> AttrKey:
    """The plan-layer key of a group-by attribute."""
    return AttrKey(gb.ref.table, gb.ref.column, gb.path_from_fact)


def rowset(schema, rows: Iterable[int]) -> RowSet:
    """A fact-table row set (e.g. a subspace's rows)."""
    return RowSet(schema.fact_table, tuple(rows))


def aggregate_plan(source: PlanNode, measure,
                   domain: tuple | None = None) -> GroupAggregate:
    """Aggregate ``measure`` over the rows of ``source``."""
    return GroupAggregate(
        child=source,
        aggregate=measure.aggregate,
        measure_sql=str(measure.expression),
        measure_expr=measure.expression,
        domain=domain,
    )


def partition_plan(source: PlanNode, keys: Sequence[AttrKey], measure,
                   domain: tuple | None = None) -> GroupAggregate:
    """Aggregate ``measure`` per group of ``keys`` over ``source``."""
    return aggregate_plan(Partition(source, tuple(keys)), measure,
                          domain=domain)


def subspace_aggregate_plan(schema, rows: Iterable[int],
                            measure) -> GroupAggregate:
    """G(DS'): the measure over a subspace's rows."""
    return aggregate_plan(rowset(schema, rows), measure)


def subspace_partition_plan(schema, rows: Iterable[int], gb, measure,
                            domain: tuple | None = None) -> GroupAggregate:
    """value → aggregate for one group-by attribute over a subspace."""
    return partition_plan(rowset(schema, rows), (attr_key(gb),), measure,
                          domain=domain)


def multi_partition_plan(
    schema,
    rows: Iterable[int],
    gbs: Sequence,
    measure,
    domains: Sequence[tuple | None] | None = None,
) -> MultiGroupAggregate:
    """One fused plan computing ``value → aggregate`` for *every* given
    group-by attribute over the same subspace rows (one scan instead of
    ``len(gbs)`` :func:`subspace_partition_plan` evaluations)."""
    return MultiGroupAggregate(
        child=rowset(schema, rows),
        keys=tuple(attr_key(gb) for gb in gbs),
        aggregate=measure.aggregate,
        measure_sql=str(measure.expression),
        measure_expr=measure.expression,
        domains=(None if domains is None
                 else tuple(None if d is None else tuple(d)
                            for d in domains)),
    )


def pivot_plan(schema, rows: Iterable[int], rows_gb, cols_gb,
               measure) -> GroupAggregate:
    """(row value, column value) → aggregate over a subspace."""
    return partition_plan(rowset(schema, rows),
                          (attr_key(rows_gb), attr_key(cols_gb)), measure)
