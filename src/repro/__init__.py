"""repro — a reproduction of "Towards Keyword-Driven Analytical Processing"
(Wu, Sismanis, Reinwald; SIGMOD 2007).

Layered architecture:

* :mod:`repro.relational` — in-memory columnar relational engine;
* :mod:`repro.textindex`  — Lucene-equivalent full-text engine;
* :mod:`repro.warehouse`  — star schemas, join paths, subspaces, roll-ups;
* :mod:`repro.core`       — KDAP itself: star-net generation & ranking,
  dynamic facet construction, interestingness measures;
* :mod:`repro.datasets`   — synthetic AdventureWorks-like warehouses and
  the paper's EBiz running example;
* :mod:`repro.evalkit`    — the experiment harness reproducing every table
  and figure of the paper's evaluation.

Quickstart::

    from repro.datasets import build_aw_online
    from repro.core import KdapSession

    schema = build_aw_online()
    session = KdapSession(schema)
    for candidate in session.differentiate("California Mountain Bikes"):
        print(candidate)
    result = session.search("California Mountain Bikes")
    print(result.total_aggregate)
"""

from .core.session import ExploreResult, KdapSession

__version__ = "1.0.0"

__all__ = ["ExploreResult", "KdapSession", "__version__"]
