"""Command-line interface.

Usage (see ``python -m repro --help``)::

    python -m repro query "California Mountain Bikes"
    python -m repro explore "California Mountain Bikes" --pick 1
    python -m repro sql "Road Bikes revenue>3000"
    python -m repro experiment figure4

The warehouse is rebuilt per invocation (deterministic given --seed);
use --facts to trade startup time for fidelity.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .core import KdapSession, RankingMethod
from .obs import Tracer, tracing_scope
from .relational.errors import (
    BackendError,
    BudgetExceeded,
    DeadlineExceeded,
    RelationalError,
)
from .resilience import Budget, create_resilient_backend
from .datasets import (
    AW_ONLINE_QUERIES,
    AW_RESELLER_QUERIES,
    build_aw_online,
    build_aw_reseller,
    build_ebiz,
)
from .datasets.scale import build_scale
from .evalkit import (
    ALL_METHODS,
    DEFAULT_BUCKET_COUNTS,
    evaluate_annealing,
    evaluate_buckets_online,
    evaluate_buckets_reseller,
    evaluate_ranking,
    render_facets,
    render_series,
    render_star_nets,
)

_WAREHOUSES = {
    "online": lambda facts, seed: build_aw_online(num_facts=facts,
                                                  seed=seed),
    "reseller": lambda facts, seed: build_aw_reseller(num_facts=facts,
                                                      seed=seed),
    "ebiz": lambda facts, seed: build_ebiz(num_trans=max(facts // 2, 100),
                                           seed=seed),
    "scale": lambda facts, seed: build_scale(num_facts=facts, seed=seed),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Keyword-Driven Analytical Processing (SIGMOD 2007 "
                    "reproduction)",
    )
    parser.add_argument("--warehouse", choices=sorted(_WAREHOUSES),
                        default="online",
                        help="which synthetic warehouse to build")
    parser.add_argument("--facts", type=int, default=20000,
                        help="approximate fact-table size")
    parser.add_argument("--seed", type=int, default=42,
                        help="generation seed")
    parser.add_argument("--backend", choices=["memory", "sqlite"],
                        default="memory",
                        help="query execution backend (logical plans run "
                             "on in-memory row-id chains or a sqlite3 "
                             "mirror)")
    parser.add_argument("--no-materialize", action="store_true",
                        help="disable the materialized sub-cube tier "
                             "(sessions enable it by default: recurring "
                             "facet/roll-up aggregates are answered from "
                             "materialized states instead of re-scanning "
                             "fact rows)")
    parser.add_argument("--resilient", action="store_true",
                        help="wrap the backend in retry-with-backoff and "
                             "automatic failover to the in-memory "
                             "interpreter")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="wall-clock deadline per query; on expiry a "
                             "partial result is returned with diagnostics "
                             "instead of an error")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="cap on rows scanned by plan operators per "
                             "query (graceful truncation, like "
                             "--deadline-ms)")
    parser.add_argument("--max-interpretations", type=int, default=None,
                        help="cap on candidate star nets enumerated per "
                             "query")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker threads for parallel phases: per-ray "
                             "prefetch during differentiation, and "
                             "morsel-parallel execution inside a single "
                             "large scan-aggregate on the memory backend; "
                             "default min(4, cpu count), 1 disables "
                             "threading")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="trace the whole command and write Chrome "
                             "trace_event JSON to PATH (open in "
                             "chrome://tracing or Perfetto)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="record explore calls slower than this "
                             "threshold in the session's slow-query log "
                             "(printed to stderr at exit)")
    parser.add_argument("--matchers", default=None, metavar="LIST",
                        help="comma-separated matcher chain for the "
                             "interpretation front end, in order "
                             "(default value,metadata,pattern); e.g. "
                             "--matchers value for the legacy value-only "
                             "pipeline")
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query",
                           help="differentiate: rank interpretations")
    query.add_argument("keywords")
    query.add_argument("--limit", type=int, default=5)
    query.add_argument("--method", choices=[m.value for m in RankingMethod],
                       default=RankingMethod.STANDARD.value)

    explore = sub.add_parser("explore",
                             help="explore one interpretation's facets")
    explore.add_argument("keywords")
    explore.add_argument("--pick", type=int, default=1,
                         help="1-based interpretation rank to explore")
    explore.add_argument("--measure", choices=["surprise", "bellwether"],
                         default="surprise")
    explore.add_argument("--stats", action="store_true",
                         help="print per-operator execution counters and "
                              "plan-cache statistics after exploring")
    explore.add_argument("--stats-json", metavar="PATH", default=None,
                         help="write the --stats data (plus the session "
                              "metrics snapshot) as JSON to PATH; '-' "
                              "writes to stdout")

    explain = sub.add_parser(
        "explain",
        help="EXPLAIN ANALYZE: run one interpretation traced and print "
             "its plan with per-operator actuals")
    explain.add_argument("keywords")
    explain.add_argument("--pick", type=int, default=1,
                         help="1-based interpretation rank to explain")
    explain.add_argument("--measure", choices=["surprise", "bellwether"],
                         default="surprise")
    explain.add_argument("--json", action="store_true",
                         help="emit the annotated plan and span tree as "
                              "JSON instead of the ASCII rendering")

    sql = sub.add_parser("sql",
                         help="print the SQL of one interpretation")
    sql.add_argument("keywords")
    sql.add_argument("--pick", type=int, default=1)

    experiment = sub.add_parser("experiment",
                                help="regenerate one paper artifact")
    experiment.add_argument(
        "which",
        choices=["figure4", "figure5", "figure6", "figure7"],
    )

    warehouse = sub.add_parser(
        "warehouse",
        help="warehouse tooling: generate million-row scale warehouses "
             "from the command line and persist them to sqlite")
    wsub = warehouse.add_subparsers(dest="warehouse_command",
                                    required=True)
    generate = wsub.add_parser(
        "generate",
        help="build datasets.scale:build_scale (seeded, deterministic) "
             "and dump data + schema metadata to a sqlite file; reload "
             "with datasets.scale:load_scale (top-level --seed applies)")
    generate.add_argument("--scale", type=int, default=1_000_000,
                          help="fact rows (default 1,000,000)")
    generate.add_argument("--products", type=int, default=24,
                          help="DimProduct catalogue size")
    generate.add_argument("--days", type=int, default=730,
                          help="DimDate calendar length")
    generate.add_argument("--out", required=True, metavar="PATH",
                          help="sqlite file to write (replaced if "
                               "present)")
    generate.add_argument("--materialize-views", action="store_true",
                          help="also precompute the default full-space "
                               "materialized views and store them in the "
                               "same file, so warm starts answer facet "
                               "roll-ups without recomputation")
    generate.add_argument("--measure", default="revenue",
                          help="measure to precompute views for "
                               "(with --materialize-views)")
    generate.add_argument("--synonyms", metavar="PATH", default=None,
                          help="also dump the schema's synonym registry "
                               "(business term -> attribute/measure, for "
                               "the metadata matcher) as editable JSON")

    serve = sub.add_parser(
        "serve",
        help="run the KDAP HTTP service: one shared warehouse, many "
             "concurrent clients, admission control and load shedding "
             "(the top-level --deadline-ms/--max-rows/"
             "--max-interpretations become server-side budget ceilings; "
             "--backend/--resilient/--workers shape each worker session)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default loopback)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks a free one")
    serve.add_argument("--pool-workers", type=int, default=4,
                       help="query worker threads, each with its own "
                            "session (top-level --workers instead sets "
                            "intra-query parallelism per session)")
    serve.add_argument("--queue-depth", type=int, default=32,
                       help="admission queue capacity; arrivals beyond "
                            "it are shed with 429 + Retry-After")
    serve.add_argument("--enqueue-deadline-ms", type=float, default=2000.0,
                       help="longest a request may wait queued before "
                            "it is shed as stale")
    serve.add_argument("--drain-deadline-s", type=float, default=10.0,
                       help="how long SIGTERM drain waits for in-flight "
                            "work before 503-aborting the remainder")
    serve.add_argument("--trace-dir", metavar="DIR", default=None,
                       help="write one Chrome trace per request to "
                            "DIR/trace-<request_id>.json")
    serve.add_argument("--chaos-error-rate", type=float, default=0.0,
                       help="inject this fraction of transient backend "
                            "faults per worker (behind retry/failover)")
    serve.add_argument("--chaos-latency-s", type=float, default=0.0,
                       help="inject this much latency per backend call")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="base seed for per-worker fault schedules")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable the always-on telemetry pipeline "
                            "(event log, tail-based trace sampling, "
                            "runtime-stats poller, SLO tracking); with "
                            "--trace-dir this also reverts to writing "
                            "every request's trace unconditionally")
    serve.add_argument("--event-log", metavar="PATH", default=None,
                       help="mirror every structured event to PATH as "
                            "append-only JSONL (the in-memory ring "
                            "behind /v1/eventz is always on)")
    serve.add_argument("--event-capacity", type=int, default=512,
                       help="in-memory event ring size (oldest events "
                            "drop first)")
    serve.add_argument("--trace-slow-ms", type=float, default=1000.0,
                       help="tail sampling: always persist traces of "
                            "requests slower than this")
    serve.add_argument("--trace-head-n", type=int, default=10,
                       help="tail sampling: keep 1-in-N traces of "
                            "healthy fast requests (0 disables the "
                            "head sample; errored and budget-truncated "
                            "requests are always persisted)")
    serve.add_argument("--slo-target-p95-ms", type=float, default=1000.0,
                       help="SLO: a request slower than this (or any "
                            "5xx) is 'bad' and burns error budget")
    serve.add_argument("--slo-error-budget", type=float, default=0.01,
                       help="SLO: tolerated bad-request fraction "
                            "(0.01 = 99%% of requests must be good)")
    serve.add_argument("--slo-burn-alert", type=float, default=2.0,
                       help="SLO: burn-rate threshold that must be "
                            "exceeded in both the short and long "
                            "window to raise a slo.burn event")
    serve.add_argument("--poll-interval-s", type=float, default=0.5,
                       help="runtime-stats poller period (queue depth / "
                            "in-flight / utilization / shed-rate "
                            "gauges on /v1/metricz)")

    top = sub.add_parser(
        "top",
        help="live terminal dashboard for a running service: polls "
             "/v1/statz and /v1/metricz and renders load, SLO burn, "
             "trace sampling, and recent events (no warehouse is "
             "built; this is a pure HTTP client)")
    top.add_argument("--url", default="http://127.0.0.1:8080",
                     help="base URL of the service")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=None,
                     help="render this many frames then exit "
                          "(default: run until interrupted)")

    events = sub.add_parser(
        "events",
        help="query a running service's structured event log")
    esub = events.add_subparsers(dest="events_command", required=True)
    tail = esub.add_parser(
        "tail",
        help="print the newest events from GET /v1/eventz (one line "
             "per event; --follow keeps polling for new ones)")
    tail.add_argument("--url", default="http://127.0.0.1:8080",
                      help="base URL of the service")
    tail.add_argument("-n", type=int, default=20,
                      help="how many recent events to fetch")
    tail.add_argument("--json", action="store_true",
                      help="emit raw event JSON, one object per line")
    tail.add_argument("--follow", action="store_true",
                      help="poll for new events (by sequence number) "
                           "until interrupted")
    tail.add_argument("--interval", type=float, default=1.0,
                      help="poll period with --follow")
    return parser


def _session(args) -> KdapSession:
    schema = _WAREHOUSES[args.warehouse](args.facts, args.seed)
    backend = (create_resilient_backend(schema, args.backend)
               if args.resilient else args.backend)
    matchers = None
    if args.matchers is not None:
        matchers = tuple(name.strip() for name in args.matchers.split(",")
                         if name.strip())
    return KdapSession(schema, backend=backend, workers=args.workers,
                       slow_query_ms=args.slow_query_ms,
                       materialize=not args.no_materialize,
                       matchers=matchers)


def _budget(args) -> Budget | None:
    """A per-query budget when any limit flag was given."""
    if (args.deadline_ms is None and args.max_rows is None
            and args.max_interpretations is None):
        return None
    return Budget(deadline_ms=args.deadline_ms, max_rows=args.max_rows,
                  max_interpretations=args.max_interpretations)


def _print_diagnostics(result) -> None:
    if not result.is_partial:
        return
    print("\npartial result (budget exhausted):")
    for line in result.diagnostics.describe():
        print(f"  {line}")


def _stats_payload(session) -> dict:
    """The machine-readable twin of ``render_counters`` plus the
    session's metrics snapshot (--stats-json)."""
    engine = session.engine
    cache = engine.cache_stats
    payload = {
        "backend": engine.backend_name,
        "plan_cache": {
            "hits": cache.hits, "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 4),
            "evictions": cache.evictions,
        },
        "operators": engine.counters.as_dict(),
        "metrics": session.metrics.snapshot(),
    }
    tier = getattr(engine, "tier", None)
    if tier is not None:
        payload["materialize"] = tier.snapshot()
    fusion = getattr(engine, "fusion", None)
    if fusion is not None:
        payload["fusion"] = {
            "fused_queries": fusion.fused_queries,
            "attributes_fused": fusion.attributes_fused,
            "scans_saved": fusion.scans_saved,
        }
    resilience = getattr(engine.backend, "resilience", None)
    if resilience is not None:
        payload["resilience"] = resilience.as_dict()
    if session.slow_log is not None:
        payload["slow_queries"] = session.slow_log.as_dict()
    return payload


def _report_slow_queries(session) -> None:
    """Print the session's recorded slow queries to stderr."""
    log = session.slow_log
    if log is None or not len(log):
        return
    print(f"\n{len(log)} slow quer{'y' if len(log) == 1 else 'ies'} "
          f"(> {log.threshold_ms:g} ms):", file=sys.stderr)
    for record in log.records:
        print(f"  {record.describe()}", file=sys.stderr)


def _print_match_notes(session) -> None:
    """Keywords the matcher chain dropped, so empty/odd results are
    explainable from the terminal (satellite: no silent drops)."""
    report = session.last_match_report
    if report is None:
        return
    for note in report.notes():
        print(f"  note: {note}")


def _cmd_query(args) -> int:
    with _session(args) as session:
        ranked = session.differentiate(args.keywords,
                                       method=RankingMethod(args.method),
                                       limit=args.limit,
                                       budget=_budget(args))
        if not ranked:
            print("no interpretation found")
            _print_match_notes(session)
            return 1
        print(render_star_nets(ranked, limit=args.limit))
        _print_match_notes(session)
        return 0


def _pick(session, args, budget=None):
    """The ``--pick``-th ranked interpretation (scored), or None."""
    ranked = session.differentiate(args.keywords, limit=max(args.pick, 5),
                                   budget=budget)
    if len(ranked) < args.pick:
        print(f"only {len(ranked)} interpretations found")
        _print_match_notes(session)
        return None
    return ranked[args.pick - 1]


def _cmd_explore(args) -> int:
    from .core import BELLWETHER, SURPRISE

    with _session(args) as session:
        budget = _budget(args)
        scored = _pick(session, args, budget=budget)
        if scored is None:
            return 1
        measure = SURPRISE if args.measure == "surprise" else BELLWETHER
        result = session.explore(scored, interestingness=measure,
                                 budget=budget)
        print(f"interpretation: {scored.interpretation.describe()}")
        print(f"{len(result.subspace)} fact rows, total = "
              f"{result.total_aggregate:,.2f}\n")
        print(render_facets(result.interface))
        _print_diagnostics(result)
        if args.stats:
            from .evalkit import render_counters

            print()
            print(render_counters(session.engine, session.metrics))
        if args.stats_json is not None:
            payload = json.dumps(_stats_payload(session), indent=2,
                                 sort_keys=True)
            if args.stats_json == "-":
                print(payload)
            else:
                with open(args.stats_json, "w", encoding="utf-8") as fh:
                    fh.write(payload + "\n")
        _report_slow_queries(session)
        return 0


def _cmd_explain(args) -> int:
    from .core import BELLWETHER, SURPRISE

    with _session(args) as session:
        measure = SURPRISE if args.measure == "surprise" else BELLWETHER
        result = session.explain(args.keywords, pick=args.pick,
                                 interestingness=measure,
                                 budget=_budget(args))
        if result is None:
            print(f"fewer than {args.pick} interpretations found")
            return EXIT_NO_RESULT
        if args.json:
            print(json.dumps(result.as_dict(), indent=2))
        else:
            print(result.render())
        _report_slow_queries(session)
        return 0


def _cmd_sql(args) -> int:
    with _session(args) as session:
        scored = _pick(session, args)
        if scored is None:
            return 1
        measure = scored.interpretation.measure_hint or "revenue"
        if measure not in session.schema.measures:
            measure = "revenue"
        print(scored.star_net.to_sql(session.schema, measure))
        return 0


def _cmd_experiment(args) -> int:
    if args.which == "figure4":
        queries = (AW_ONLINE_QUERIES if args.warehouse == "online"
                   else AW_RESELLER_QUERIES)
        session = _session(args)
        evaluation = evaluate_ranking(session, queries)
        ranks = list(range(1, 11))
        series = {m.value: evaluation.curve(m, 10) for m in ALL_METHODS}
        print(render_series(ranks, series, x_label="top-x"))
        return 0
    if args.which in ("figure5", "figure6"):
        if args.which == "figure5":
            schema = build_aw_online(num_facts=args.facts, seed=args.seed)
            evaluation = evaluate_buckets_online(schema)
        else:
            schema = build_aw_reseller(num_facts=args.facts,
                                       seed=args.seed)
            evaluation = evaluate_buckets_reseller(schema)
        counts = list(DEFAULT_BUCKET_COUNTS)
        series = {line.label: [line.errors[b] for b in counts]
                  for line in evaluation.lines}
        print(render_series(counts, series, x_label="buckets"))
        return 0
    # figure7
    session = KdapSession(build_aw_online(num_facts=args.facts,
                                          seed=args.seed))
    scenario = evaluate_annealing(session, "France Clothing",
                                  "DimCustomer", "YearlyIncome")
    checkpoints = [1, 10, 50, 100, 200, 500]
    series = {c.label: [c.error_at(i) for i in checkpoints]
              for c in scenario.curves}
    print(f"query='France Clothing', {scenario.basic_intervals} basic "
          "intervals")
    print(render_series(checkpoints, series, x_label="iteration"))
    return 0


def _cmd_warehouse(args) -> int:
    import os

    from .relational.persistence import dump_database
    from .warehouse import MaterializationTier

    schema = build_scale(num_facts=args.scale, seed=args.seed,
                         num_products=args.products, num_days=args.days)
    if os.path.exists(args.out):
        os.remove(args.out)
    dump_database(schema.database, args.out)
    message = (f"wrote {schema.num_fact_rows:,} fact rows "
               f"(seed {args.seed}) to {args.out}")
    if args.materialize_views:
        tier = MaterializationTier(schema)
        built = tier.precompute(args.measure)
        tier.save(args.out)
        message += f"; materialized {built} full-space views"
    if args.synonyms is not None:
        from .core import SynonymRegistry

        registry = SynonymRegistry(schema.synonyms)
        registry.save(args.synonyms)
        message += (f"; wrote {len(registry)} synonym terms to "
                    f"{args.synonyms}")
    print(message)
    return 0


def _serve_config(args):
    """Map CLI flags onto a :class:`~repro.service.ServiceConfig`.

    The top-level budget flags become *server ceilings* (clamping every
    client's hints) rather than per-query budgets, and the top-level
    --backend/--resilient/--workers shape each worker's session.  Kept
    separate from :func:`_cmd_serve` so tests can check the mapping
    without binding a socket.
    """
    from .service import ServiceConfig

    overrides = {}
    if args.deadline_ms is not None:
        overrides["max_deadline_ms"] = args.deadline_ms
    if args.slow_query_ms is not None:
        overrides["slow_query_ms"] = args.slow_query_ms
    return ServiceConfig(
        workers=args.pool_workers,
        queue_depth=args.queue_depth,
        enqueue_deadline_ms=args.enqueue_deadline_ms,
        drain_deadline_s=args.drain_deadline_s,
        max_rows=args.max_rows,
        max_interpretations=args.max_interpretations,
        backend=args.backend,
        resilient=args.resilient,
        session_workers=args.workers or 1,
        chaos_error_rate=args.chaos_error_rate,
        chaos_latency_s=args.chaos_latency_s,
        chaos_seed=args.chaos_seed,
        materialize=not args.no_materialize,
        trace_dir=args.trace_dir,
        telemetry=not args.no_telemetry,
        event_capacity=args.event_capacity,
        event_path=args.event_log,
        trace_slow_ms=args.trace_slow_ms,
        trace_head_n=args.trace_head_n,
        slo_target_p95_ms=args.slo_target_p95_ms,
        slo_error_budget=args.slo_error_budget,
        slo_burn_alert=args.slo_burn_alert,
        poll_interval_s=args.poll_interval_s,
        **overrides,
    )


def _cmd_serve(args) -> int:
    from .service import KdapService, serve_until_signalled

    schema = _WAREHOUSES[args.warehouse](args.facts, args.seed)
    service = KdapService(schema, _serve_config(args))
    return serve_until_signalled(service, args.host, args.port)


def _cmd_top(args) -> int:
    from .obs.top import run_top

    return run_top(args.url, interval_s=args.interval,
                   iterations=args.iterations)


def _cmd_events(args) -> int:
    """``repro events tail``: print the service's newest events.

    A pure HTTP client like ``repro top`` — dogfooding ``/v1/eventz``
    the way an external collector would.  ``--follow`` polls using the
    per-event sequence number as a cursor, so nothing prints twice and
    ring overwrites between polls surface as a gap warning.
    """
    import time as _time
    import urllib.error
    import urllib.request

    from .obs.events import Event

    base = args.url.rstrip("/")

    def fetch():
        with urllib.request.urlopen(f"{base}/v1/eventz?n={args.n}",
                                    timeout=5.0) as response:
            return json.loads(response.read().decode("utf-8"))

    def render(event: dict) -> str:
        if args.json:
            return json.dumps(event, sort_keys=True)
        fields = {key: value for key, value in event.items()
                  if key not in ("seq", "ts", "kind")}
        return Event(event["seq"], event.get("ts", 0.0),
                     event["kind"], fields).describe()

    last_seq = 0
    try:
        while True:
            try:
                payload = fetch()
            except (urllib.error.URLError, OSError) as exc:
                print(f"could not reach {base}: {exc}", file=sys.stderr)
                return EXIT_BACKEND
            fresh = [event for event in payload.get("events", [])
                     if event["seq"] > last_seq]
            if last_seq and fresh and fresh[0]["seq"] > last_seq + 1:
                print(f"... {fresh[0]['seq'] - last_seq - 1} event(s) "
                      "dropped by the ring between polls ...",
                      file=sys.stderr)
            for event in fresh:
                print(render(event))
                last_seq = event["seq"]
            if not args.follow:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


_COMMANDS = {
    "query": _cmd_query,
    "explore": _cmd_explore,
    "explain": _cmd_explain,
    "sql": _cmd_sql,
    "experiment": _cmd_experiment,
    "warehouse": _cmd_warehouse,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "events": _cmd_events,
}

# Exit codes per error-taxonomy branch (argparse itself exits with 2 on
# usage errors; 1 means "ran fine, found nothing").  Observability
# outputs never shift exit codes: --stats-json / --trace-out files are
# written on the success paths and exit code 0 still means "explored
# something", so scripts can parse the JSON without re-checking stderr.
EXIT_NO_RESULT = 1
EXIT_USAGE = 2
EXIT_DEADLINE = 3
EXIT_BUDGET = 4
EXIT_BACKEND = 5
EXIT_ENGINE = 6


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Engine errors surface as one-line stderr messages with distinct exit
    codes, never tracebacks: deadline → 3, budget → 4, backend failure
    (after retries/failover) → 5, any other engine error → 6.

    With ``--trace-out PATH`` the whole command runs under a tracer and
    the Chrome trace is written even on an error exit — a trace of the
    failing query is exactly what the flag is for.
    """
    args = _build_parser().parse_args(argv)
    tracer = Tracer() if args.trace_out is not None else None
    try:
        with tracing_scope(tracer):
            return _COMMANDS[args.command](args)
    except ValueError as exc:
        # bad flag *values* argparse can't see (e.g. --matchers junk)
        # rank with its usage errors, not with engine failures
        print(f"usage error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except DeadlineExceeded as exc:
        print(f"deadline exceeded: {exc}", file=sys.stderr)
        return EXIT_DEADLINE
    except BudgetExceeded as exc:
        print(f"budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except BackendError as exc:
        print(f"backend failure: {exc}", file=sys.stderr)
        return EXIT_BACKEND
    except RelationalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ENGINE
    finally:
        if tracer is not None:
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                json.dump(tracer.to_chrome_trace(), fh)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
