"""Aggregate caching for the explore phase (the paper's §7 performance
direction).

"Our current implementation requires aggregation over the sub-dataspace
associated with a given keyword query.  This can be quite expensive on
sizable data warehouses.  We plan to leverage the optimization power of
existing OLAP engines and to develop new specialized techniques optimized
for KDAP."

:class:`AggregateCache` is such a specialised technique for this engine:

* **full-space materialisation** — per (group-by attribute, measure), the
  whole dataspace's per-value aggregates are computed once and reused by
  every query whose roll-up degenerates to ALL;
* **subspace memoisation** — partition aggregates are memoised by a
  content key of (fact-row set, attribute, measure, domain restriction),
  so re-exploring the same interpretation (or comparing measures on it)
  never recomputes;
* **statistics** — hit/miss counters so benchmarks can show the effect.

The cache is layered *around* :class:`~repro.warehouse.subspace.Subspace`
(wrap calls in :meth:`partition_aggregates`); nothing else changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .schema import GroupByAttribute, StarSchema
from .subspace import Subspace


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.total if self.total else 0.0


class AggregateCache:
    """Memoised partition aggregation over one star schema."""

    def __init__(self, schema: StarSchema, max_entries: int = 4096):
        self.schema = schema
        self.max_entries = max_entries
        self._memo: dict[tuple, dict] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def _subspace_key(subspace: Subspace) -> tuple:
        rows = subspace.fact_rows
        # content key: cheap but collision-safe enough — length plus a
        # structural hash of the row tuple
        return (len(rows), hash(rows))

    def _key(self, subspace: Subspace, gb: GroupByAttribute,
             measure_name: str, domain) -> tuple:
        domain_key = None if domain is None else tuple(domain)
        return (
            self._subspace_key(subspace),
            gb.ref.table, gb.ref.column, gb.path_from_fact.fk_names,
            measure_name, domain_key,
        )

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def partition_aggregates(
        self,
        subspace: Subspace,
        gb: GroupByAttribute,
        measure_name: str,
        domain: Iterable | None = None,
    ) -> dict:
        """Memoised :meth:`Subspace.partition_aggregates`."""
        domain = None if domain is None else list(domain)
        key = self._key(subspace, gb, measure_name, domain)
        cached = self._memo.get(key)
        if cached is not None:
            self.stats.hits += 1
            return dict(cached)
        self.stats.misses += 1
        result = subspace.partition_aggregates(gb, measure_name,
                                               domain=domain)
        if len(self._memo) >= self.max_entries:
            # simple clear-on-full policy: explore sessions are bursty and
            # a fresh burst rarely reuses a stale warehouse-wide history
            self._memo.clear()
        self._memo[key] = dict(result)
        return result

    def precompute_full_space(self, measure_name: str,
                              attributes: Iterable[GroupByAttribute]
                              | None = None) -> int:
        """Materialise the whole dataspace's aggregates for the given
        attributes (default: every declared categorical candidate).

        Returns the number of partitions materialised.  Roll-ups that
        degenerate to ALL — common for top-level hit groups — then hit
        the cache directly.
        """
        full = Subspace.full(self.schema)
        if attributes is None:
            attributes = [
                gb for dim in self.schema.dimensions
                for gb in dim.groupbys if not gb.is_numerical
            ]
        count = 0
        for gb in attributes:
            self.partition_aggregates(full, gb, measure_name)
            count += 1
        return count

    def clear(self) -> None:
        """Drop every memoised partition (stats are kept)."""
        self._memo.clear()

    def __len__(self) -> int:
        return len(self._memo)
