"""Aggregate caching for the explore phase (the paper's §7 performance
direction).

"Our current implementation requires aggregation over the sub-dataspace
associated with a given keyword query.  This can be quite expensive on
sizable data warehouses.  We plan to leverage the optimization power of
existing OLAP engines and to develop new specialized techniques optimized
for KDAP."

:class:`AggregateCache` is such a specialised technique for this engine:

* **full-space materialisation** — per (group-by attribute, measure), the
  whole dataspace's per-value aggregates are computed once and reused by
  every query whose roll-up degenerates to ALL;
* **subspace memoisation** — partition aggregates are memoised in a
  :class:`~repro.plan.cache.PlanCache` keyed by the canonical
  **fingerprint** of the logical plan that computes them, so any two
  consumers asking the semantically identical question share one entry
  (and entries are shared with a bound :class:`~repro.plan.engine.QueryEngine`
  building the same plans);
* **bounded memory** — ``max_entries`` is enforced by LRU eviction, with
  evictions surfaced in :class:`~repro.plan.cache.CacheStats`;
* **statistics** — hit/miss/eviction counters so benchmarks can show the
  effect.

The cache is layered *around* :class:`~repro.warehouse.subspace.Subspace`
(wrap calls in :meth:`partition_aggregates`); nothing else changes.  The
full materialization tier — lattice roll-up answering, incremental
append maintenance, admission, persistence — lives in
:mod:`repro.warehouse.materialize` and plugs into the engine directly.
"""

from __future__ import annotations

from typing import Iterable

from ..plan.builders import subspace_partition_plan
from ..plan.cache import CacheStats, PlanCache
from .schema import GroupByAttribute, StarSchema
from .subspace import Subspace

__all__ = ["AggregateCache", "CacheStats"]

_MISS = object()


class AggregateCache:
    """Memoised partition aggregation over one star schema.

    Bound to an ``engine``, the memo *is* that engine's
    :class:`~repro.plan.cache.PlanCache` — entries written by either side
    (engine execution, fused-query seeding, or this wrapper) serve the
    other, because both key by the canonical plan fingerprint qualified
    through :meth:`~repro.plan.engine.QueryEngine.cache_key`.  Unbound,
    it keeps a private cache keyed by raw fingerprints (the standalone
    fold path cannot observe table mutations, matching the historical
    contract).
    """

    def __init__(self, schema: StarSchema, max_entries: int = 4096,
                 engine=None):
        self.schema = schema
        self.engine = engine
        if engine is not None:
            self._cache = engine.cache
        else:
            self._cache = PlanCache(max_entries=max_entries)

    @property
    def max_entries(self) -> int:
        return self._cache.max_entries

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def partition_aggregates(
        self,
        subspace: Subspace,
        gb: GroupByAttribute,
        measure_name: str,
        domain: Iterable | None = None,
    ) -> dict:
        """Memoised :meth:`Subspace.partition_aggregates`."""
        domain = None if domain is None else tuple(domain)
        if self.engine is not None:
            # route through the engine: it performs the (single) shared
            # cache lookup itself, writes the shared entry on a miss, and
            # may answer from the materialization tier without a scan
            return self.engine.subspace_partition_aggregates(
                self.engine.bind(subspace), gb, measure_name,
                domain=domain)
        measure = self.schema.measures[measure_name]
        plan = subspace_partition_plan(self.schema, subspace.fact_rows,
                                       gb, measure, domain=domain)
        key = plan.fingerprint()
        cached = self._cache.get(key, _MISS)
        if cached is not _MISS:
            return dict(cached)
        result = subspace.partition_aggregates(gb, measure_name,
                                               domain=domain)
        self._cache.put(key, dict(result))
        return result

    def precompute_full_space(self, measure_name: str,
                              attributes: Iterable[GroupByAttribute]
                              | None = None) -> int:
        """Materialise the whole dataspace's aggregates for the given
        attributes (default: every declared categorical candidate).

        Returns the number of partitions materialised.  Roll-ups that
        degenerate to ALL — common for top-level hit groups — then hit
        the cache directly.
        """
        full = Subspace.full(self.schema)
        if attributes is None:
            attributes = [
                gb for dim in self.schema.dimensions
                for gb in dim.groupbys if not gb.is_numerical
            ]
        count = 0
        for gb in attributes:
            self.partition_aggregates(full, gb, measure_name)
            count += 1
        return count

    def clear(self) -> None:
        """Drop every memoised partition (stats are kept)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
