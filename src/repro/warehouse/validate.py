"""Schema quality checks.

``validate_schema`` inspects a :class:`StarSchema` for the data-quality
problems that silently corrupt KDAP results, returning human-readable
warning strings (empty list = clean):

* non-functional hierarchy levels — a child value mapping to several
  parent values makes roll-up partitioning ambiguous;
* searchable columns that are missing or not TEXT;
* group-by paths that do not start at the fact table, do not end at the
  attribute's table, or traverse a one-to-many step (which would break
  fact-aligned resolution);
* referential-integrity violations (delegated to the catalog);
* dimensions with no group-by candidates (they can never build a facet).
"""

from __future__ import annotations

from ..relational.types import ColumnType
from .schema import StarSchema


def validate_schema(schema: StarSchema, check_integrity: bool = True,
                    max_examples: int = 3) -> list[str]:
    """Run every check; returns a list of warning messages."""
    warnings: list[str] = []
    warnings.extend(_check_hierarchies(schema, max_examples))
    warnings.extend(_check_searchable(schema))
    warnings.extend(_check_groupby_paths(schema))
    warnings.extend(_check_dimensions(schema))
    if check_integrity:
        violations = schema.database.check_referential_integrity()
        if violations:
            warnings.append(
                f"referential integrity: {len(violations)} dangling "
                f"foreign keys (first: {violations[0]})"
            )
    return warnings


def _check_hierarchies(schema: StarSchema,
                       max_examples: int) -> list[str]:
    warnings: list[str] = []
    for dim in schema.dimensions:
        for hierarchy in dim.hierarchies:
            for level in range(len(hierarchy.levels) - 1):
                child_ref = hierarchy.levels[level]
                parent_ref = hierarchy.levels[level + 1]
                child_table = schema.database.table(child_ref.table)
                if child_ref.table == parent_ref.table:
                    parents = child_table.column_values(parent_ref.column)
                else:
                    path = schema._hierarchy_link_path(child_ref.table,
                                                       parent_ref.table)
                    parents = schema.resolve_column(
                        child_ref.table, path, parent_ref.column)
                children = child_table.column_values(child_ref.column)
                seen: dict = {}
                conflicts: list[str] = []
                for child, parent in zip(children, parents):
                    if child is None or parent is None:
                        continue
                    if child in seen and seen[child] != parent:
                        conflicts.append(
                            f"{child!r} -> {seen[child]!r} and {parent!r}")
                        if len(conflicts) >= max_examples:
                            break
                    seen.setdefault(child, parent)
                if conflicts:
                    warnings.append(
                        f"hierarchy {hierarchy.name!r} level "
                        f"{child_ref} is not functional: "
                        + "; ".join(conflicts)
                    )
    return warnings


def _check_searchable(schema: StarSchema) -> list[str]:
    warnings: list[str] = []
    for table_name, columns in schema.searchable.items():
        if not schema.database.has_table(table_name):
            warnings.append(f"searchable table {table_name!r} missing")
            continue
        table = schema.database.table(table_name)
        for column in columns:
            if not table.has_column(column):
                warnings.append(
                    f"searchable column {table_name}.{column} missing")
            elif table.column(column).type is not ColumnType.TEXT:
                warnings.append(
                    f"searchable column {table_name}.{column} is "
                    f"{table.column(column).type.value}, not text")
    return warnings


def _check_groupby_paths(schema: StarSchema) -> list[str]:
    warnings: list[str] = []
    for dim in schema.dimensions:
        for gb in dim.groupbys:
            path = gb.path_from_fact
            if path.steps:
                if path.source != schema.fact_table:
                    warnings.append(
                        f"group-by {gb.ref}: path starts at "
                        f"{path.source!r}, not the fact table")
                if path.target != gb.ref.table:
                    warnings.append(
                        f"group-by {gb.ref}: path ends at "
                        f"{path.target!r}, not {gb.ref.table!r}")
                if not all(step.towards_parent for step in path.steps):
                    warnings.append(
                        f"group-by {gb.ref}: path contains a one-to-many "
                        "step; fact-aligned resolution is undefined")
            elif gb.ref.table != schema.fact_table:
                warnings.append(
                    f"group-by {gb.ref}: empty path but the attribute is "
                    "not on the fact table")
    return warnings


def _check_dimensions(schema: StarSchema) -> list[str]:
    return [
        f"dimension {dim.name!r} has no group-by candidates"
        for dim in schema.dimensions
        if not dim.groupbys
    ]
