"""Subspaces: sets of fact rows with aggregation and partitioning.

The paper's DS' ("sub-dataspace") is exactly a subset of the fact table.
A :class:`Subspace` is therefore a sorted tuple of fact row ids bound to a
:class:`~repro.warehouse.schema.StarSchema`.

A subspace may additionally be *engine-bound* (``engine`` set to a
:class:`~repro.plan.engine.QueryEngine`): aggregation and partitioning
then go through the engine's logical-plan layer — picking up plan-level
caching and whichever execution backend the engine runs — while unbound
subspaces fall back to the local loops over the schema's cached
fact-aligned vectors.  Results are identical either way; the binding only
chooses the evaluation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..relational import vector as vec
from ..relational.operators import AGGREGATES, fused_group_aggregates
from .schema import GroupByAttribute, StarSchema


@dataclass(frozen=True)
class Subspace:
    """A subset DS' of the fact table.

    ``label`` is a human-readable description (typically the star net that
    produced it).  ``engine`` is excluded from equality/hashing: two
    subspaces with the same rows are the same DS' regardless of how they
    will be evaluated.
    """

    schema: StarSchema
    fact_rows: tuple[int, ...]
    label: str = ""
    engine: object | None = field(default=None, compare=False, repr=False)

    @staticmethod
    def of(schema: StarSchema, rows: Iterable[int], label: str = "",
           engine=None) -> "Subspace":
        """Normalise any row collection into a subspace."""
        return Subspace(schema, tuple(sorted(set(rows))), label,
                        engine=engine)

    @staticmethod
    def full(schema: StarSchema, label: str = "ALL",
             engine=None) -> "Subspace":
        """The whole dataspace DS (every fact row)."""
        return Subspace(schema, tuple(range(schema.num_fact_rows)), label,
                        engine=engine)

    def __len__(self) -> int:
        return len(self.fact_rows)

    @property
    def is_empty(self) -> bool:
        """True when no fact row qualifies."""
        return not self.fact_rows

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Subspace") -> "Subspace":
        """Rows in both subspaces (merge scan over the sorted row ids)."""
        rows = vec.intersect_sorted(self.fact_rows, other.fact_rows)
        return Subspace(self.schema, tuple(rows),
                        label=f"({self.label}) AND ({other.label})",
                        engine=self.engine or other.engine)

    def union(self, other: "Subspace") -> "Subspace":
        """Rows in either subspace (merge scan over the sorted row ids)."""
        rows = vec.union_sorted(self.fact_rows, other.fact_rows)
        return Subspace(self.schema, tuple(rows),
                        label=f"({self.label}) OR ({other.label})",
                        engine=self.engine or other.engine)

    def contains(self, other: "Subspace") -> bool:
        """True when ``other`` is a subset of this subspace."""
        return vec.is_subset_sorted(other.fact_rows, self.fact_rows)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def aggregate(self, measure_name: str) -> float:
        """G(DS'): the measure aggregated over the whole subspace."""
        if self.engine is not None:
            return self.engine.subspace_aggregate(self, measure_name)
        measure = self.schema.measures[measure_name]
        values = self.schema.measure_vector(measure_name)
        fn = AGGREGATES[measure.aggregate]
        return fn(vec.take(values, self.fact_rows))

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    def groupby_values(self, gb: GroupByAttribute) -> list:
        """The group-by attribute's value for each row of the subspace,
        aligned with ``fact_rows``."""
        return vec.take(self.schema.groupby_vector(gb), self.fact_rows)

    def domain(self, gb: GroupByAttribute) -> list:
        """DOM(DS', attr): distinct non-null attribute values present,
        sorted for determinism."""
        return sorted(
            {v for v in self.groupby_values(gb) if v is not None},
            key=lambda v: (str(type(v)), v),
        )

    def partition(self, gb: GroupByAttribute) -> dict:
        """PAR(DS', attr): value → list of subspace rows (NULLs dropped),
        grouped in one columnar pass."""
        return vec.group_rows(self.schema.groupby_vector(gb),
                              self.fact_rows)

    def partition_aggregates(
        self,
        gb: GroupByAttribute,
        measure_name: str,
        domain: Iterable | None = None,
    ) -> dict:
        """value → aggregated measure for each group.

        When ``domain`` is given, only those categories are computed and
        missing categories aggregate over zero rows (0 for sum/count,
        None for avg/min/max) — this implements the paper's restriction
        of PAR(RUP(DS'), attr) to the segments that also exist in
        PAR(DS', attr).
        """
        if self.engine is not None:
            return self.engine.subspace_partition_aggregates(
                self, gb, measure_name, domain=domain)
        measure = self.schema.measures[measure_name]
        values = self.schema.measure_vector(measure_name)
        fn = AGGREGATES[measure.aggregate]
        groups = self.partition(gb)
        if domain is None:
            return {
                value: fn(vec.take(values, rows))
                for value, rows in groups.items()
            }
        return {
            value: fn(vec.take(values, groups.get(value, ())))
            for value in domain
        }

    def multi_partition_aggregates(
        self,
        gbs: Iterable[GroupByAttribute],
        measure_name: str,
        domains: Iterable | None = None,
    ) -> list[dict]:
        """One :meth:`partition_aggregates` dict per group-by, fused.

        Engine-bound subspaces route through
        :meth:`~repro.plan.engine.QueryEngine.multi_partition_aggregates`
        (one plan, one scan or one batched SQL statement for all
        group-bys); unbound subspaces run the same one-pass fused kernel
        locally over the schema's fact-aligned vectors.  ``domains``
        aligns with ``gbs`` when given (None entries unrestricted).
        """
        gbs = list(gbs)
        if self.engine is not None:
            return self.engine.multi_partition_aggregates(
                self, gbs, measure_name, domains=domains)
        domain_keys = ([None] * len(gbs) if domains is None
                       else [None if d is None else tuple(d)
                             for d in domains])
        if len(domain_keys) != len(gbs):
            raise ValueError("domains must align one-to-one with gbs")
        measure = self.schema.measures[measure_name]
        fill = AGGREGATES[measure.aggregate](())
        if self.is_empty or not gbs:
            return [
                {} if dk is None else {value: fill for value in dk}
                for dk in domain_keys
            ]
        vectors = [self.schema.groupby_vector(gb) for gb in gbs]
        measure_values = self.schema.measure_vector(measure_name)
        fused = fused_group_aggregates(
            self.fact_rows, vectors, measure_values, measure.aggregate)
        return [
            groups if dk is None
            else {value: groups.get(value, fill) for value in dk}
            for groups, dk in zip(fused, domain_keys)
        ]
