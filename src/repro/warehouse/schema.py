"""Star/snowflake schema metadata: dimensions, hierarchies, measures.

A :class:`StarSchema` wraps a :class:`~repro.relational.catalog.Database`
with the OLAP knowledge KDAP needs:

* which table is the fact table and what the measures are;
* how tables group into *dimensions* (a dimension may span several tables,
  and one table — e.g. a shared ``Location`` — may belong to several
  dimensions);
* the *aggregation hierarchies* inside each dimension (used by roll-up
  partitioning, §5.2.1 of the paper);
* the manually declared candidate group-by attributes (§5.2.1: "In our
  current implementation, we manually specify the candidate group-by
  attributes within each dimension");
* which text attributes are full-text searchable.

The schema also owns the *fact-aligned column cache*: resolving a dimension
attribute down to one value per fact row is the hot operation behind every
partitioning, so resolved vectors are memoised per (join path, column).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..relational.catalog import Database
from ..relational.chunks import (
    CHUNK_SIZE,
    ColumnChunk,
    encode_chunk,
    encode_column,
)
from ..relational.errors import SchemaError, UnknownColumnError
from ..relational.expressions import Expression
from .graph import JoinPath, SchemaGraph


@dataclass(frozen=True)
class AttributeRef:
    """A (table, column) pair naming one attribute domain."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


class AttributeKind(enum.Enum):
    """Whether an attribute partitions categorically or numerically."""

    CATEGORICAL = "categorical"
    NUMERICAL = "numerical"


@dataclass(frozen=True)
class GroupByAttribute:
    """A candidate group-by attribute of a dimension.

    ``path_from_fact`` is the canonical join path from the fact table to the
    attribute's table; it pins down *which role* of a shared table is meant
    (Customer-geography vs Store-geography).
    """

    ref: AttributeRef
    kind: AttributeKind
    path_from_fact: JoinPath

    @property
    def is_numerical(self) -> bool:
        """True for numerical attributes (bucketized before partitioning)."""
        return self.kind is AttributeKind.NUMERICAL

    def __str__(self) -> str:
        return f"{self.ref} ({self.kind.value})"


@dataclass(frozen=True)
class Hierarchy:
    """An aggregation hierarchy: attribute levels from finest to coarsest.

    e.g. ``EnglishProductName → SubcategoryName → CategoryName``.
    """

    name: str
    levels: tuple[AttributeRef, ...]

    def __post_init__(self) -> None:
        if len(self.levels) < 1:
            raise SchemaError(f"hierarchy {self.name!r} needs at least one level")

    def level_index(self, ref: AttributeRef) -> int | None:
        """Position of ``ref`` in this hierarchy, or None."""
        for i, level in enumerate(self.levels):
            if level == ref:
                return i
        return None

    def parent_level(self, ref: AttributeRef) -> AttributeRef | None:
        """The next-coarser level above ``ref``, or None at the top."""
        idx = self.level_index(ref)
        if idx is None or idx + 1 >= len(self.levels):
            return None
        return self.levels[idx + 1]


@dataclass(frozen=True)
class Dimension:
    """A named group of tables, hierarchies, and group-by candidates."""

    name: str
    tables: tuple[str, ...]
    hierarchies: tuple[Hierarchy, ...] = ()
    groupbys: tuple[GroupByAttribute, ...] = ()

    @property
    def is_hierarchical(self) -> bool:
        """True when the dimension declares at least one multi-level hierarchy."""
        return any(len(h.levels) > 1 for h in self.hierarchies)


@dataclass(frozen=True)
class Measure:
    """A named aggregate over fact columns.

    ``expression`` is evaluated per fact row (e.g. UnitPrice * Quantity);
    ``aggregate`` names the fold applied over a group (sum/count/avg/...).
    """

    name: str
    expression: Expression
    aggregate: str = "sum"


class StarSchema:
    """A database plus its OLAP interpretation."""

    def __init__(
        self,
        database: Database,
        fact_table: str,
        dimensions: Sequence[Dimension],
        measures: Sequence[Measure],
        searchable: Mapping[str, Sequence[str]],
        fact_complex: Sequence[str] = (),
        synonyms: Mapping[str, Sequence[str]] | None = None,
    ):
        """``fact_complex`` names additional header tables that belong to
        the fact side of the schema (e.g. the EBiz ``TRANS`` header above
        the ``TRANSITEM`` fact): join paths may traverse them without
        assigning them to any dimension.

        ``synonyms`` seeds the schema's business-term registry (term →
        ``"Table.Column"`` / ``"measure:name"`` targets) used by the
        metadata keyword matcher; see
        :class:`repro.core.synonyms.SynonymRegistry`."""
        if not database.has_table(fact_table):
            raise SchemaError(f"fact table {fact_table!r} not in database")
        self.database = database
        self.fact_table = fact_table
        self.synonyms: dict[str, tuple[str, ...]] = {
            term: tuple(targets)
            for term, targets in (synonyms or {}).items()
        }
        self.fact_complex: frozenset[str] = frozenset(fact_complex) | {
            fact_table
        }
        self.dimensions: tuple[Dimension, ...] = tuple(dimensions)
        self.measures: dict[str, Measure] = {m.name: m for m in measures}
        self.searchable: dict[str, tuple[str, ...]] = {
            t: tuple(cols) for t, cols in searchable.items()
        }
        self.graph = SchemaGraph(database)
        self._validate()
        # caches -------------------------------------------------------
        # lock-guarded: ray-prefetch and morsel workers resolve vectors
        # and chunks concurrently, and an unguarded dict fill would let
        # two threads race to (re)compute the same entry.
        # Every entry is version-stamped: fact-aligned entries carry the
        # versions of the non-fact tables behind them plus the fact row
        # count at fill time (append-only tables ⇒ an unchanged prefix),
        # so dimension mutations invalidate and fact appends extend the
        # cached payload incrementally instead of invalidating it.
        self._cache_lock = threading.Lock()
        self._fact_vectors: dict[tuple, tuple] = {}
        self._fact_chunks: dict[tuple, tuple] = {}
        self._measure_vectors: dict[str, tuple] = {}
        self._parent_maps: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for table, cols in self.searchable.items():
            t = self.database.table(table)
            for col in cols:
                if not t.has_column(col):
                    raise UnknownColumnError(table, col)
        for dim in self.dimensions:
            for name in dim.tables:
                self.database.table(name)  # raises if missing
            for hierarchy in dim.hierarchies:
                for ref in hierarchy.levels:
                    t = self.database.table(ref.table)
                    if not t.has_column(ref.column):
                        raise UnknownColumnError(ref.table, ref.column)
            for gb in dim.groupbys:
                t = self.database.table(gb.ref.table)
                if not t.has_column(gb.ref.column):
                    raise UnknownColumnError(gb.ref.table, gb.ref.column)
                if gb.path_from_fact.steps:
                    if gb.path_from_fact.source != self.fact_table:
                        raise SchemaError(
                            f"group-by path for {gb.ref} must start at the "
                            f"fact table, got {gb.path_from_fact.source!r}"
                        )
                    if gb.path_from_fact.target != gb.ref.table:
                        raise SchemaError(
                            f"group-by path for {gb.ref} must end at "
                            f"{gb.ref.table!r}, got "
                            f"{gb.path_from_fact.target!r}"
                        )

    # ------------------------------------------------------------------
    # dimension / hierarchy lookups
    # ------------------------------------------------------------------
    def dimension(self, name: str) -> Dimension:
        """Look up a dimension by name."""
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise SchemaError(f"unknown dimension {name!r}")

    def dimensions_of_table(self, table: str) -> list[Dimension]:
        """Every dimension containing ``table`` (shared tables → several)."""
        return [d for d in self.dimensions if table in d.tables]

    def hierarchy_position(
        self, ref: AttributeRef
    ) -> tuple[Dimension, Hierarchy, int] | None:
        """Locate ``ref`` inside some dimension hierarchy.

        Returns (dimension, hierarchy, level index), or None when the
        attribute is not a hierarchy level.
        """
        for dim in self.dimensions:
            for hierarchy in dim.hierarchies:
                idx = hierarchy.level_index(ref)
                if idx is not None:
                    return (dim, hierarchy, idx)
        return None

    def path_via_dimension(self, dimension: Dimension, table: str,
                           max_length: int = 6) -> JoinPath:
        """The canonical fact → ``table`` path whose intermediate tables all
        belong to ``dimension`` (resolves shared-table role ambiguity)."""
        candidates = [
            p for p in self.graph.join_paths(self.fact_table, table, max_length)
            if all(t in self.fact_complex or t in dimension.tables
                   for t in p.tables)
        ]
        if not candidates:
            raise SchemaError(
                f"no path from {self.fact_table!r} to {table!r} inside "
                f"dimension {dimension.name!r}"
            )
        return candidates[0]  # join_paths sorts by length, then FK names

    # ------------------------------------------------------------------
    # row-level resolution (fact-aligned vectors)
    # ------------------------------------------------------------------
    def resolve_column(self, base_table: str, path: JoinPath,
                       column: str,
                       row_ids: Sequence[int] | None = None) -> list:
        """One value of ``column`` per row of ``base_table``, resolved by
        walking ``path`` (every step must move towards an FK parent, i.e.
        many-to-one, so each base row maps to at most one value).

        Rows whose FK chain dangles resolve to None.  ``row_ids``
        restricts resolution to a selection of base rows (the delta path
        of incremental cache maintenance); the result aligns with it.
        """
        table = self.database.table(base_table)
        current: list = (list(range(len(table))) if row_ids is None
                         else list(row_ids))
        current_table = table
        for step in path.steps:
            if not step.towards_parent:
                raise SchemaError(
                    f"cannot resolve row-level values across a one-to-many "
                    f"step: {step}"
                )
            parent = self.database.table(step.target)
            parent_index: dict[object, int] = {}
            for rid, value in enumerate(parent.column_values(step.target_column)):
                if value is not None and value not in parent_index:
                    parent_index[value] = rid
            child_values = current_table.column_values(step.source_column)
            current = [
                parent_index.get(child_values[rid]) if rid is not None else None
                for rid in current
            ]
            current_table = parent
        values = current_table.column_values(column)
        return [values[rid] if rid is not None else None for rid in current]

    def _path_versions(self, path: JoinPath) -> tuple[int, ...]:
        """Versions of every non-fact table a resolution path reads."""
        return tuple(self.database.table(t).version for t in path.tables
                     if t != self.fact_table)

    def fact_vector(self, path: JoinPath, column: str) -> list:
        """Cached fact-aligned vector of ``column`` reached via ``path``.

        Thread-safe: concurrent workers may race to the first resolve;
        whichever finishes first wins the cache slot and every caller
        sees one consistent vector.  Fact appends extend the cached
        vector by resolving only the delta rows; dimension mutations
        (which can re-target existing fact rows) recompute it.
        """
        key = (path.fk_names, column)
        n = self.num_fact_rows
        dims = self._path_versions(path)
        with self._cache_lock:
            entry = self._fact_vectors.get(key)
        if entry is not None and entry[0] == dims:
            if entry[1] == n:
                return entry[2]
            if entry[1] < n:
                # append-only growth: resolve just the delta and publish
                # a fresh extended list (holders of the old snapshot keep
                # a consistent shorter vector)
                delta = self.resolve_column(self.fact_table, path, column,
                                            row_ids=range(entry[1], n))
                values = entry[2] + delta
                with self._cache_lock:
                    self._fact_vectors[key] = (dims, n, values)
                return values
        values = self.resolve_column(self.fact_table, path, column)
        with self._cache_lock:
            self._fact_vectors[key] = (dims, n, values)
        return values

    def fact_chunks(self, path: JoinPath, column: str) -> list[ColumnChunk]:
        """Encoded column chunks of one fact-aligned vector (cached).

        Dimension attributes resolved to the fact grain repeat few
        distinct values, so these almost always dictionary- or
        run-length-encode; the chunk list is index-aligned with every
        other fact-grain chunk list, letting multi-key operators walk
        them in lockstep and skip chunks via zone maps.  On fact appends
        only the tail is re-encoded: full chunks are immutable, so the
        old list is reused up to the last chunk boundary.
        """
        key = (path.fk_names, column)
        n = self.num_fact_rows
        dims = self._path_versions(path)
        with self._cache_lock:
            entry = self._fact_chunks.get(key)
        if entry is not None and entry[0] == dims and entry[1] == n:
            return entry[2]
        base = self.fact_vector(path, column)
        if (entry is not None and entry[0] == dims and entry[1] < n
                and entry[2]):
            chunks = list(entry[2])
            if chunks[-1].stop - chunks[-1].start < CHUNK_SIZE:
                chunks.pop()    # partial tail chunk: re-encode it
            start = chunks[-1].stop if chunks else 0
            while start < n:
                stop = min(start + CHUNK_SIZE, n)
                chunks.append(encode_chunk(base, start, stop))
                start = stop
        else:
            chunks = encode_column(base)
        with self._cache_lock:
            self._fact_chunks[key] = (dims, n, chunks)
        return chunks

    def groupby_vector(self, gb: GroupByAttribute) -> list:
        """Fact-aligned values of a group-by attribute."""
        return self.fact_vector(gb.path_from_fact, gb.ref.column)

    def measure_vector(self, measure_name: str) -> list:
        """Cached per-fact-row measure values (computed through the
        expression batch seam, one kernel pass over the fact table).
        Fact appends evaluate only the delta rows."""
        n = self.num_fact_rows
        with self._cache_lock:
            entry = self._measure_vectors.get(measure_name)
        if entry is not None and entry[0] == n:
            return entry[1]
        measure = self.measures[measure_name]
        fact = self.database.table(self.fact_table)
        if entry is not None and entry[0] < n:
            delta = measure.expression.evaluate_batch(
                fact, range(entry[0], n))
            values = entry[1] + delta
        else:
            measure.expression.validate(fact)
            values = measure.expression.evaluate_batch(fact)
        with self._cache_lock:
            self._measure_vectors[measure_name] = (n, values)
        return values

    # ------------------------------------------------------------------
    # hierarchy value mappings (for roll-up)
    # ------------------------------------------------------------------
    def parent_map(self, hierarchy: Hierarchy, level_index: int) -> dict:
        """child value → parent value map between adjacent hierarchy levels.

        Derived from the data: project (child, parent) pairs, joining across
        tables when the levels live in different tables.
        """
        return self._parent_entry(hierarchy, level_index)[1]

    def functional_parent_map(self, hierarchy: Hierarchy,
                              level_index: int) -> dict | None:
        """:meth:`parent_map`, but only when the step is *functional*.

        Returns None when any child value maps to more than one parent —
        including a mix of NULL and non-NULL parents (e.g. scale's
        MonthName, where "January" belongs to several calendar years).
        Lattice roll-up may only re-aggregate a finer materialized view
        across functional steps; otherwise per-row re-partitioning and
        per-value mapping would disagree.
        """
        versions, mapping, functional = self._parent_entry(hierarchy,
                                                           level_index)
        del versions
        return mapping if functional else None

    def _parent_entry(self, hierarchy: Hierarchy,
                      level_index: int) -> tuple:
        if level_index + 1 >= len(hierarchy.levels):
            raise SchemaError(
                f"level {level_index} of hierarchy {hierarchy.name!r} "
                "has no parent level"
            )
        key = (hierarchy.name, level_index)
        child_ref = hierarchy.levels[level_index]
        parent_ref = hierarchy.levels[level_index + 1]
        tables = {child_ref.table, parent_ref.table}
        if child_ref.table != parent_ref.table:
            path = self._hierarchy_link_path(child_ref.table,
                                             parent_ref.table)
            tables.update(path.tables)
        versions = tuple(self.database.table(t).version
                         for t in sorted(tables))
        with self._cache_lock:
            entry = self._parent_maps.get(key)
        if entry is not None and entry[0] == versions:
            return entry
        child_table = self.database.table(child_ref.table)
        if child_ref.table == parent_ref.table:
            parent_values = child_table.column_values(parent_ref.column)
        else:
            path = self._hierarchy_link_path(child_ref.table,
                                             parent_ref.table)
            parent_values = self.resolve_column(
                child_ref.table, path, parent_ref.column
            )
        child_values = child_table.column_values(child_ref.column)
        mapping: dict = {}
        conflicted = False
        null_parents: set = set()
        for child, parent in zip(child_values, parent_values):
            if child is None:
                continue
            if parent is None:
                null_parents.add(child)
                continue
            if mapping.setdefault(child, parent) != parent:
                conflicted = True
        functional = not conflicted and not (null_parents & mapping.keys())
        entry = (versions, mapping, functional)
        with self._cache_lock:
            self._parent_maps[key] = entry
        return entry

    def _hierarchy_link_path(self, child_table: str,
                             parent_table: str) -> JoinPath:
        """Shortest child → parent path that avoids the fact table."""
        candidates = [
            p for p in self.graph.join_paths(child_table, parent_table)
            if not (set(p.tables) & self.fact_complex)
            and all(s.towards_parent for s in p.steps)
        ]
        if not candidates:
            raise SchemaError(
                f"no FK chain from {child_table!r} up to {parent_table!r}"
            )
        return candidates[0]

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @property
    def num_fact_rows(self) -> int:
        """Number of rows in the fact table."""
        return len(self.database.table(self.fact_table))

    def groupby_attribute(self, table: str, column: str) -> GroupByAttribute:
        """Find a declared group-by candidate by its attribute ref."""
        for dim in self.dimensions:
            for gb in dim.groupbys:
                if gb.ref.table == table and gb.ref.column == column:
                    return gb
        raise SchemaError(f"no group-by candidate {table}.{column}")
