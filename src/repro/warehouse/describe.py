"""Textual schema description — a Figure-2-style rendering.

``describe_schema`` prints, per dimension, its tables (with searchable /
total attribute counts like the paper's parenthesised annotations), its
aggregation hierarchies, and its group-by candidates; then the fact side
with measures and FK fan-out.  Useful for README output and for sanity-
checking generated warehouses.
"""

from __future__ import annotations

from .schema import StarSchema


def describe_schema(schema: StarSchema) -> str:
    """A multi-line human-readable description of a star schema."""
    db = schema.database
    lines: list[str] = [f"StarSchema {db.name!r}"]

    fact = db.table(schema.fact_table)
    lines.append(
        f"  fact table {fact.name} ({len(fact)} rows, "
        f"{len(fact.columns)} attributes)"
    )
    extra_fact = sorted(schema.fact_complex - {schema.fact_table})
    if extra_fact:
        lines.append(f"  fact complex: {', '.join(extra_fact)}")
    for name, measure in schema.measures.items():
        lines.append(
            f"  measure {name} = {measure.aggregate}({measure.expression})"
        )

    for dim in schema.dimensions:
        lines.append(f"  dimension {dim.name}"
                     + (" [hierarchical]" if dim.is_hierarchical else ""))
        for table_name in dim.tables:
            table = db.table(table_name)
            searchable = len(schema.searchable.get(table_name, ()))
            lines.append(
                f"    table {table_name} ({searchable}/"
                f"{len(table.columns)} searchable, {len(table)} rows)"
            )
        for hierarchy in dim.hierarchies:
            chain = " -> ".join(str(level) for level in hierarchy.levels)
            lines.append(f"    hierarchy {hierarchy.name}: {chain}")
        for gb in dim.groupbys:
            lines.append(f"    group-by {gb}")

    lines.append(f"  foreign keys ({len(db.foreign_keys)}):")
    for fk in db.foreign_keys:
        lines.append(f"    {fk.name}: {fk}")
    return "\n".join(lines)


def schema_statistics(schema: StarSchema) -> dict:
    """The headline shape numbers (the paper's §6.1 statistics)."""
    searchable_domains = sum(
        len(cols) for cols in schema.searchable.values()
    )
    return {
        "fact_rows": schema.num_fact_rows,
        "tables": len(schema.database.table_names),
        "dimensions": len(schema.dimensions),
        "hierarchical_dimensions": sum(
            d.is_hierarchical for d in schema.dimensions
        ),
        "searchable_domains": searchable_domains,
        "foreign_keys": len(schema.database.foreign_keys),
        "groupby_candidates": sum(
            len(d.groupbys) for d in schema.dimensions
        ),
    }
