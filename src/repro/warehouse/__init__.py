"""OLAP warehouse layer: star schemas, join paths, subspaces, roll-ups.

Public surface::

    from repro.warehouse import (
        AttributeKind, AttributeRef, Dimension, GroupByAttribute,
        Hierarchy, Measure, StarSchema,
        SchemaGraph, JoinPath, PathStep, EMPTY_PATH,
        Subspace, slice_facts, select_rows_by_values, generalize_values,
    )
"""

from .graph import (
    EMPTY_PATH,
    JoinPath,
    PathStep,
    SchemaGraph,
    path_from_fk_names,
)
from .cube_cache import AggregateCache, CacheStats
from .describe import describe_schema, schema_statistics
from .materialize import (
    FULL_SCOPE,
    MaterializationTier,
    MaterializedView,
    MaterializeStats,
)
from .validate import validate_schema
from .operations import PivotTable, dice, drill_down, pivot, roll_up, slice_
from .rollup import generalize_values, select_rows_by_values, slice_facts
from .schema import (
    AttributeKind,
    AttributeRef,
    Dimension,
    GroupByAttribute,
    Hierarchy,
    Measure,
    StarSchema,
)
from .subspace import Subspace

__all__ = [
    "AggregateCache",
    "AttributeKind",
    "AttributeRef",
    "CacheStats",
    "Dimension",
    "EMPTY_PATH",
    "FULL_SCOPE",
    "GroupByAttribute",
    "Hierarchy",
    "JoinPath",
    "MaterializationTier",
    "MaterializeStats",
    "MaterializedView",
    "Measure",
    "PathStep",
    "PivotTable",
    "SchemaGraph",
    "StarSchema",
    "Subspace",
    "describe_schema",
    "dice",
    "drill_down",
    "generalize_values",
    "path_from_fk_names",
    "pivot",
    "roll_up",
    "schema_statistics",
    "select_rows_by_values",
    "slice_",
    "slice_facts",
    "validate_schema",
]
