"""Roll-up primitives and star-join evaluation.

Two pieces live here:

* :func:`slice_facts` — push a selection on a dimension table down a join
  path to the fact table (a chain of semi-joins).  This is how a star net
  ray turns keywords into fact rows.
* :func:`generalize_values` — map attribute values one level up their
  aggregation hierarchy.  This is the data half of the paper's RUP
  operator (§5.2.1): enlarging DS' by generalising a hit group's selection
  to the parent level.
"""

from __future__ import annotations

from typing import Iterable

from ..relational import vector
from ..relational.operators import semi_join
from .graph import JoinPath
from .schema import AttributeRef, StarSchema


def slice_facts(
    schema: StarSchema,
    source_table: str,
    source_rows: Iterable[int],
    path_to_fact: JoinPath,
) -> set[int]:
    """Fact rows reachable from ``source_rows`` along ``path_to_fact``.

    ``path_to_fact`` must start at ``source_table`` and end at the fact
    table.  Each step is evaluated as a semi-join, so complexity is linear
    in the visited tables.
    """
    if path_to_fact.steps:
        if path_to_fact.source != source_table:
            raise ValueError(
                f"path starts at {path_to_fact.source!r}, "
                f"expected {source_table!r}"
            )
        if path_to_fact.target != schema.fact_table:
            raise ValueError(
                f"path ends at {path_to_fact.target!r}, "
                f"expected fact table {schema.fact_table!r}"
            )
    elif source_table != schema.fact_table:
        raise ValueError("empty path is only valid from the fact table")

    current_rows = list(source_rows)
    current_table = schema.database.table(source_table)
    for step in path_to_fact.steps:
        next_table = schema.database.table(step.target)
        current_rows = semi_join(
            child=next_table,
            child_key=step.target_column,
            parent_row_ids=current_rows,
            parent=current_table,
            parent_key=step.source_column,
        )
        current_table = next_table
        if not current_rows:
            break
    return set(current_rows)


def select_rows_by_values(
    schema: StarSchema, ref: AttributeRef, values: Iterable
) -> list[int]:
    """Row ids of ``ref.table`` whose ``ref.column`` is in ``values``
    (one vectorized IN probe over the whole column)."""
    table = schema.database.table(ref.table)
    return vector.select_in(table.column_values(ref.column), values,
                            keep_null=True)


def generalize_values(
    schema: StarSchema,
    ref: AttributeRef,
    values: Iterable,
) -> tuple[AttributeRef, set] | None:
    """Map ``values`` of hierarchy level ``ref`` to the parent level.

    Returns ``(parent_ref, parent_values)``, or None when ``ref`` is not a
    hierarchy level or is already the top level — in which case the roll-up
    degenerates to "all" (drop the selection entirely).
    """
    position = schema.hierarchy_position(ref)
    if position is None:
        return None
    _dim, hierarchy, level_idx = position
    if level_idx + 1 >= len(hierarchy.levels):
        return None
    mapping = schema.parent_map(hierarchy, level_idx)
    parents = {mapping[v] for v in values if v in mapping}
    if not parents:
        return None
    return hierarchy.levels[level_idx + 1], parents
