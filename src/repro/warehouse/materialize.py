"""Materialized sub-cube tier: lattice answering + incremental upkeep.

The paper's §7 names aggregation over keyword-selected sub-dataspaces as
the dominant cost and calls for "new specialized techniques optimized
for KDAP".  :class:`MaterializationTier` is that tier for this engine —
the classic OLAP materialized-view move, adapted to the append-only
warehouse and the canonical-fingerprint plan layer:

* **exact hits** — a materialized ``(scope, group-by, measure)`` view
  answers the identical aggregate from its mergeable states, no scan;
* **lattice roll-up answering** — a miss at a coarser hierarchy level is
  answered by re-aggregating a *finer* materialized view (per-Product
  sums merge into per-Category sums) through the dimension hierarchy's
  child→parent value maps.  Sound only across *functional* steps with no
  NULL child keys, which the tier verifies per step; the derived coarse
  view is registered so the next query is an exact hit;
* **incremental maintenance** — fact tables are append-only, so each
  view keeps a high-water mark of folded rows and folds only the delta
  on refresh (cost ∝ appended rows).  Dimension mutations can re-map
  existing fact rows and fall back to a full rebuild;
* **cost-based admission** — views are not built eagerly: after
  ``admit_after`` fingerprint-distinct misses that share a finer
  ancestor, that ancestor is materialized (one view then serves its
  whole hierarchy upward);
* **persistence** — full-space views serialize through the sqlite side
  table of :mod:`repro.relational.persistence`, keyed by attribute
  fingerprint, so a warm start skips recomputation.

Maintenance work (builds, delta folds, rebuilds) deliberately does not
charge the ambient row :class:`~repro.resilience.budget.Budget` — budget
caps bound *query* work, and truncating a half-built view would corrupt
it — but it does honor deadlines cooperatively: an expired deadline
aborts the build into fresh state dicts, leaving existing views intact.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..obs.metrics import current_registry
from ..plan.builders import attr_key
from ..relational.errors import ResourceExhausted, SchemaError
from ..relational.operators import (
    AGGREGATE_STATES,
    chunked_group_states,
    finalize_group_states,
    merge_group_states,
)
from ..resilience.budget import check_deadline
from .schema import GroupByAttribute, Hierarchy, StarSchema

__all__ = [
    "FULL_SCOPE",
    "MaterializationTier",
    "MaterializeStats",
    "MaterializedView",
]

FULL_SCOPE = ("full",)
"""Scope key of the whole dataspace (the only scope that grows)."""

_NULLS_UNKNOWN = -1
"""Sentinel ``null_rows``: a derived view that dropped unmapped children
cannot vouch for its NULL-key rows, so it must not seed further roll-ups."""


@dataclass
class MaterializeStats:
    """Tier-level effectiveness counters (mirrored into the ambient
    metrics registry as ``kdap.materialize.*`` for /v1/statz rollup)."""

    hits: int = 0
    rollup_hits: int = 0
    misses: int = 0
    admitted: int = 0
    refreshes: int = 0
    refreshed_rows: int = 0
    rebuilds: int = 0
    evicted: int = 0
    restored: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "rollup_hits": self.rollup_hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "admitted": self.admitted,
            "refreshes": self.refreshes,
            "refreshed_rows": self.refreshed_rows,
            "rebuilds": self.rebuilds,
            "evicted": self.evicted,
            "restored": self.restored,
        }


@dataclass
class MaterializedView:
    """One materialized group-by partition with mergeable states.

    ``states`` maps each group value to the aggregate's decomposable
    state (see :data:`~repro.relational.operators.AGGREGATE_STATES`;
    avg stores ``[sum, count]``), so views merge upward through the
    lattice and fold append deltas without touching finalized numbers.
    ``hwm_rows`` is the fact-row high-water mark already folded in;
    ``null_rows`` counts in-scope rows whose group key resolved to NULL
    (only a view with zero may seed a roll-up).  ``rows`` pins the frozen
    row set of a non-full scope (None for the full dataspace).
    """

    gb: GroupByAttribute
    measure_name: str
    aggregate: str
    scope: tuple
    states: dict
    hwm_rows: int
    null_rows: int
    dim_versions: tuple
    rows: tuple | None
    refreshes: int = 0
    rebuilds: int = 0


class MaterializationTier:
    """Lattice-aware materialized aggregates over one star schema.

    Thread-safe: one lock covers lookup, roll-up derivation, admission,
    and maintenance, matching the per-worker-session deployment in the
    service layer (cheap relative to the scans it avoids).
    """

    def __init__(self, schema: StarSchema, admit_after: int = 2,
                 max_views: int = 256):
        if admit_after < 1:
            raise ValueError("admit_after must be positive")
        if max_views < 1:
            raise ValueError("max_views must be positive")
        self.schema = schema
        self.admit_after = admit_after
        self.max_views = max_views
        self.stats = MaterializeStats()
        self._lock = threading.RLock()
        self._views: OrderedDict[tuple, MaterializedView] = OrderedDict()
        # admission log: anchor view key -> distinct missed fingerprints
        self._miss_log: dict[tuple, set] = {}

    def __len__(self) -> int:
        return len(self._views)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MaterializationTier({len(self._views)} views, "
                f"{self.stats.hits} hits / {self.stats.misses} misses)")

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def answer(self, rows: Sequence[int], gb: GroupByAttribute,
               measure_name: str,
               domain: Iterable | None = None) -> dict | None:
        """value → aggregate for ``(rows, gb, measure)``, or None.

        Served from an exact view when one exists (after folding any
        append delta), else derived by lattice roll-up from a finer view
        in the same hierarchy; a true miss returns None and the caller
        should execute the plan and report it via :meth:`note_miss`.
        """
        if self._supported(measure_name) is None:
            return None
        domain_key = None if domain is None else tuple(domain)
        with self._lock:
            scope = self._scope(rows)
            key = self._view_key(scope, gb, measure_name)
            view = self._get_fresh(key)
            rolled = False
            if view is None:
                view = self._rollup(scope, gb, measure_name)
                if view is None:
                    return None
                rolled = True
            self.stats.hits += 1
            current_registry().counter("kdap.materialize.hit").inc()
            if rolled:
                self.stats.rollup_hits += 1
                current_registry().counter(
                    "kdap.materialize.rollup").inc()
            return finalize_group_states(view.aggregate, view.states,
                                         domain=domain_key)

    def note_miss(self, rows: Sequence[int], gb: GroupByAttribute,
                  measure_name: str, fingerprint) -> None:
        """Admission accounting for a query the tier could not answer.

        After :attr:`admit_after` fingerprint-distinct misses that share
        a finer ancestor — the finest hierarchy level reachable from the
        missed attribute across functional steps, or the attribute
        itself — that ancestor is materialized, so one build serves its
        whole hierarchy upward via roll-up.
        """
        with self._lock:
            self.stats.misses += 1
            current_registry().counter("kdap.materialize.miss").inc()
            if self._supported(measure_name) is None:
                return
            scope = self._scope(rows)
            anchor = self._finest_ancestor(gb)
            akey = self._view_key(scope, anchor, measure_name)
            if akey in self._views and anchor is not gb:
                # the ancestor exists yet could not answer (NULL child
                # keys, non-functional suffix): admit the attribute itself
                anchor = gb
                akey = self._view_key(scope, anchor, measure_name)
            if akey in self._views:
                return
            log = self._miss_log.setdefault(akey, set())
            log.add(fingerprint)
            if len(log) < self.admit_after:
                return
            stored = None if scope == FULL_SCOPE else tuple(rows)
            try:
                view = self._build_view(anchor, measure_name, scope,
                                        stored)
            except ResourceExhausted:
                return  # deadline pressure: retry on a later miss
            self._miss_log.pop(akey, None)
            self._admit(akey, view)
            self.stats.admitted += 1
            current_registry().counter("kdap.materialize.admitted").inc()

    # ------------------------------------------------------------------
    # precomputation (warehouse generate / warm start)
    # ------------------------------------------------------------------
    def precompute(self, measure_name: str,
                   attributes: Iterable[GroupByAttribute] | None = None
                   ) -> int:
        """Materialize full-space views eagerly; returns views built."""
        if self._supported(measure_name) is None:
            raise SchemaError(
                f"measure {measure_name!r} has no mergeable aggregate "
                "states; cannot materialize")
        if attributes is None:
            attributes = self.default_attributes()
        count = 0
        with self._lock:
            for gb in attributes:
                key = self._view_key(FULL_SCOPE, gb, measure_name)
                if self._get_fresh(key) is not None:
                    continue
                view = self._build_view(gb, measure_name, FULL_SCOPE,
                                        None)
                self._admit(key, view)
                self.stats.admitted += 1
                count += 1
        return count

    def default_attributes(self) -> list[GroupByAttribute]:
        """Candidates worth precomputing: for every categorical group-by
        its finest functional ancestor (one finest view answers the whole
        hierarchy above it), deduplicated."""
        chosen: dict = {}
        for dim in self.schema.dimensions:
            for gb in dim.groupbys:
                if gb.is_numerical:
                    continue
                anchor = self._finest_ancestor(gb)
                chosen.setdefault(attr_key(anchor).fingerprint(), anchor)
        return list(chosen.values())

    def snapshot(self) -> dict:
        """Stats plus view count, for ``--stats`` / ``/v1/statz``."""
        with self._lock:
            return {"views": len(self._views), **self.stats.as_dict()}

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Serializable snapshot of the hot full-space views.

        Rowset-scoped views are session artifacts — their frozen row
        sets only mean something against a live subspace — so only
        full-space partitions persist, keyed by attribute fingerprint.
        """
        views = []
        with self._lock:
            for key, view in self._views.items():
                if view.scope != FULL_SCOPE:
                    continue
                views.append({
                    "fingerprint": repr(key[1]),
                    "table": view.gb.ref.table,
                    "column": view.gb.ref.column,
                    "path": list(view.gb.path_from_fact.fk_names),
                    "measure": view.measure_name,
                    "aggregate": view.aggregate,
                    "hwm_rows": view.hwm_rows,
                    "null_rows": view.null_rows,
                    "groups": [[value, state]
                               for value, state in view.states.items()],
                })
        return {"format": 1, "views": views}

    def restore(self, payload: dict) -> int:
        """Load persisted full-space views (warm start); returns count.

        Views whose group-by or measure no longer resolves, or whose
        high-water mark exceeds the live fact table, are skipped.
        Restored views adopt the live dimension versions — a dump is
        only meaningful against the database it was written with — and
        fold any fact-append delta lazily on first use.
        """
        restored = 0
        n = self.schema.num_fact_rows
        with self._lock:
            for spec in payload.get("views", ()):
                try:
                    gb = self.schema.groupby_attribute(spec["table"],
                                                       spec["column"])
                except SchemaError:
                    continue
                if tuple(spec["path"]) != gb.path_from_fact.fk_names:
                    continue
                measure = self.schema.measures.get(spec["measure"])
                if (measure is None
                        or measure.aggregate != spec["aggregate"]
                        or spec["aggregate"] not in AGGREGATE_STATES):
                    continue
                if spec["hwm_rows"] > n:
                    continue
                states = {value: list(state)
                          for value, state in spec["groups"]}
                view = MaterializedView(
                    gb=gb, measure_name=spec["measure"],
                    aggregate=spec["aggregate"], scope=FULL_SCOPE,
                    states=states, hwm_rows=spec["hwm_rows"],
                    null_rows=spec["null_rows"],
                    dim_versions=self._dim_versions(gb), rows=None,
                )
                self._admit(self._view_key(FULL_SCOPE, gb,
                                           spec["measure"]), view)
                restored += 1
            self.stats.restored += restored
        return restored

    def save(self, path: str) -> int:
        """Persist full-space views into the warehouse's sqlite file."""
        from ..relational.persistence import save_materialized

        payload = self.to_payload()
        save_materialized(path, payload)
        return len(payload["views"])

    def load(self, path: str) -> int:
        """Warm-start from a sqlite file written by :meth:`save`."""
        from ..relational.persistence import load_materialized

        payload = load_materialized(path)
        if payload is None:
            return 0
        return self.restore(payload)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _supported(self, measure_name: str):
        measure = self.schema.measures.get(measure_name)
        if measure is None or measure.aggregate not in AGGREGATE_STATES:
            return None
        return measure

    def _scope(self, rows: Sequence[int]) -> tuple:
        # subspace rows are sorted distinct ids below num_fact_rows, so
        # a full-length row set IS the full dataspace — checked first to
        # keep the common full-space path free of O(n) tuple hashing
        if len(rows) == self.schema.num_fact_rows:
            return FULL_SCOPE
        return ("rowset", len(rows), hash(tuple(rows)))

    @staticmethod
    def _view_key(scope: tuple, gb: GroupByAttribute,
                  measure_name: str) -> tuple:
        return (scope, attr_key(gb).fingerprint(), measure_name)

    def _dim_versions(self, gb: GroupByAttribute) -> tuple:
        return self.schema._path_versions(gb.path_from_fact)

    def _get_fresh(self, key: tuple) -> MaterializedView | None:
        view = self._views.get(key)
        if view is None:
            return None
        try:
            self._freshen(view)
        except ResourceExhausted:
            # deadline mid-maintenance: the view is untouched (folds go
            # into fresh dicts); report a miss and let the query path
            # surface the deadline itself
            return None
        self._views.move_to_end(key)
        return view

    def _freshen(self, view: MaterializedView) -> None:
        """Bring a view up to date with the live tables.

        Fact appends fold only the delta rows past the high-water mark;
        dimension mutations can re-map existing fact rows — the
        non-foldable case — and trigger the full-rebuild fallback.
        """
        if view.dim_versions != self._dim_versions(view.gb):
            self._rebuild(view)
            return
        if view.scope == FULL_SCOPE:
            n = self.schema.num_fact_rows
            if n > view.hwm_rows:
                self._fold_delta(view, n)

    def _fold_delta(self, view: MaterializedView, n: int) -> None:
        gb = view.gb
        chunks = self.schema.fact_chunks(gb.path_from_fact, gb.ref.column)
        measure = self.schema.measure_vector(view.measure_name)
        delta = range(view.hwm_rows, n)
        # fold into fresh states first: an abort mid-fold must not leave
        # the view half-updated
        fresh = chunked_group_states(
            [chunks], measure, view.aggregate, row_ids=delta,
            on_chunk=lambda _rows: check_deadline("materialize.refresh"),
        )[0]
        vector = self.schema.fact_vector(gb.path_from_fact, gb.ref.column)
        nulls = sum(1 for r in delta if vector[r] is None)
        merge_group_states(view.aggregate, view.states, fresh)
        if view.null_rows != _NULLS_UNKNOWN:
            view.null_rows += nulls
        view.hwm_rows = n
        view.refreshes += 1
        self.stats.refreshes += 1
        self.stats.refreshed_rows += len(delta)
        current_registry().counter("kdap.materialize.refresh").inc()

    def _rebuild(self, view: MaterializedView) -> None:
        states, nulls = self._compute(view.gb, view.measure_name,
                                      view.rows)
        view.states = states
        view.null_rows = nulls
        view.hwm_rows = self.schema.num_fact_rows
        view.dim_versions = self._dim_versions(view.gb)
        view.rebuilds += 1
        self.stats.rebuilds += 1
        current_registry().counter("kdap.materialize.rebuild").inc()

    def _compute(self, gb: GroupByAttribute, measure_name: str,
                 rows: tuple | None) -> tuple[dict, int]:
        measure = self.schema.measures[measure_name]
        chunks = self.schema.fact_chunks(gb.path_from_fact, gb.ref.column)
        mvec = self.schema.measure_vector(measure_name)
        states = chunked_group_states(
            [chunks], mvec, measure.aggregate, row_ids=rows,
            on_chunk=lambda _rows: check_deadline("materialize.build"),
        )[0]
        if rows is None:
            nulls = sum(c.zone.null_count for c in chunks)
        else:
            vector = self.schema.fact_vector(gb.path_from_fact,
                                             gb.ref.column)
            nulls = sum(1 for r in rows if vector[r] is None)
        return states, nulls

    def _build_view(self, gb: GroupByAttribute, measure_name: str,
                    scope: tuple, rows: tuple | None) -> MaterializedView:
        measure = self.schema.measures[measure_name]
        states, nulls = self._compute(gb, measure_name, rows)
        return MaterializedView(
            gb=gb, measure_name=measure_name,
            aggregate=measure.aggregate, scope=scope, states=states,
            hwm_rows=self.schema.num_fact_rows, null_rows=nulls,
            dim_versions=self._dim_versions(gb), rows=rows,
        )

    def _admit(self, key: tuple, view: MaterializedView) -> None:
        self._views[key] = view
        self._views.move_to_end(key)
        while len(self._views) > self.max_views:
            self._views.popitem(last=False)
            self.stats.evicted += 1

    # ------------------------------------------------------------------
    # lattice
    # ------------------------------------------------------------------
    def _rollup(self, scope: tuple, gb: GroupByAttribute,
                measure_name: str) -> MaterializedView | None:
        """Derive ``gb``'s view from a finer materialized one, merging
        its states through the hierarchy's child→parent value maps.

        Requires every traversed step to be functional (each child value
        owns exactly one non-NULL parent) and the source view to have no
        NULL child keys — otherwise per-row partitioning and per-value
        mapping could disagree and the tier refuses, falling back to the
        scan path.  The derived view is registered so later queries at
        this level are exact hits.
        """
        position = self.schema.hierarchy_position(gb.ref)
        if position is None:
            return None
        _dim, hierarchy, idx = position
        for level in range(idx - 1, -1, -1):
            child_gb = self._level_groupby(hierarchy, level, gb)
            if child_gb is None:
                continue
            child_view = self._get_fresh(
                self._view_key(scope, child_gb, measure_name))
            if child_view is None or child_view.null_rows != 0:
                continue
            mapping = self._composed_map(hierarchy, level, idx)
            if mapping is None:
                continue
            acc = AGGREGATE_STATES[child_view.aggregate]
            states: dict = {}
            dropped = False
            for child_value, state in child_view.states.items():
                parent = mapping.get(child_value)
                if parent is None:
                    dropped = True  # coarse key is NULL for these rows
                    continue
                target = states.get(parent)
                if target is None:
                    states[parent] = list(state)
                else:
                    acc.merge(target, state)
            view = MaterializedView(
                gb=gb, measure_name=measure_name,
                aggregate=child_view.aggregate, scope=scope,
                states=states, hwm_rows=child_view.hwm_rows,
                null_rows=(_NULLS_UNKNOWN if dropped else 0),
                dim_versions=self._dim_versions(gb),
                rows=child_view.rows,
            )
            self._admit(self._view_key(scope, gb, measure_name), view)
            return view
        return None

    def _level_groupby(self, hierarchy: Hierarchy, level: int,
                       gb: GroupByAttribute) -> GroupByAttribute | None:
        """The declared group-by for a finer level, role-checked: its
        fact path must be a prefix of ``gb``'s (same shared-table role)."""
        ref = hierarchy.levels[level]
        try:
            child_gb = self.schema.groupby_attribute(ref.table, ref.column)
        except SchemaError:
            return None
        prefix = child_gb.path_from_fact.fk_names
        if gb.path_from_fact.fk_names[:len(prefix)] != prefix:
            return None
        return child_gb

    def _composed_map(self, hierarchy: Hierarchy, level: int,
                      idx: int) -> dict | None:
        """child→ancestor value map across ``level .. idx``, or None when
        any step is non-functional."""
        composed: dict | None = None
        for step in range(level, idx):
            step_map = self.schema.functional_parent_map(hierarchy, step)
            if step_map is None:
                return None
            if composed is None:
                composed = dict(step_map)
            else:
                composed = {
                    child: step_map[parent]
                    for child, parent in composed.items()
                    if parent in step_map
                }
        return composed

    def _finest_ancestor(self, gb: GroupByAttribute) -> GroupByAttribute:
        """The finest hierarchy level below ``gb`` reachable across
        functional steps with compatible paths; ``gb`` itself otherwise."""
        position = self.schema.hierarchy_position(gb.ref)
        if position is None:
            return gb
        _dim, hierarchy, idx = position
        best = gb
        for level in range(idx - 1, -1, -1):
            if self.schema.functional_parent_map(hierarchy, level) is None:
                break
            child_gb = self._level_groupby(hierarchy, level, gb)
            if child_gb is None:
                break
            best = child_gb
        return best
