"""Classic OLAP navigation operations over subspaces.

The paper (§3) notes that each attribute instance in a dynamic facet "may
serve as an entry point for drill-down operations to more detailed
subspaces", and the explore phase is meant to compose with the usual
slice-dice / drill-down / roll-up / pivot repertoire.  These operators
implement that repertoire directly on :class:`Subspace`:

* :func:`slice_` — fix one attribute to one value (the facet click);
* :func:`dice`   — restrict several attributes to value sets at once;
* :func:`drill_down` — slice plus descend one hierarchy level: the result
  is partitioned by the next-finer attribute;
* :func:`roll_up` — re-partition one level coarser;
* :func:`pivot`  — a two-attribute cross-tabulation of the measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..relational import vector
from ..relational.errors import SchemaError
from .schema import AttributeRef, GroupByAttribute, StarSchema
from .subspace import Subspace


def slice_(subspace: Subspace, gb: GroupByAttribute, value) -> Subspace:
    """Fact rows of ``subspace`` whose ``gb`` attribute equals ``value``.

    Engine-bound subspaces evaluate through the plan layer (and stay
    bound); unbound ones filter locally over the fact-aligned vector.
    """
    label = f"{subspace.label} / {gb.ref}={value!r}"
    if subspace.engine is not None:
        rows = subspace.engine.filter_rows(subspace, [(gb, (value,))])
    else:
        rows = vector.select_in(subspace.schema.groupby_vector(gb),
                                (value,), subspace.fact_rows,
                                keep_null=True)
    return Subspace.of(subspace.schema, rows, label=label,
                       engine=subspace.engine)


def dice(subspace: Subspace,
         selections: Mapping[GroupByAttribute, Iterable]) -> Subspace:
    """Restrict several attributes simultaneously (value sets are ORed
    within an attribute, ANDed across attributes)."""
    schema = subspace.schema
    label = subspace.label
    normalized = [(gb, tuple(values)) for gb, values in selections.items()]
    for gb, values in normalized:
        label += f" / {gb.ref} IN {sorted(map(str, set(values)))}"
    if subspace.engine is not None:
        rows = subspace.engine.filter_rows(subspace, normalized)
    else:
        rows = list(subspace.fact_rows)
        for gb, values in normalized:
            rows = vector.select_in(schema.groupby_vector(gb), values,
                                    rows, keep_null=True)
    return Subspace.of(schema, rows, label=label, engine=subspace.engine)


def _level_groupby(schema: StarSchema, gb: GroupByAttribute,
                   ref: AttributeRef) -> GroupByAttribute:
    """The declared group-by candidate for a hierarchy level, required so
    the fact-aligned resolution path is canonical."""
    try:
        return schema.groupby_attribute(ref.table, ref.column)
    except SchemaError:
        raise SchemaError(
            f"hierarchy level {ref} is not a declared group-by candidate; "
            "declare it to navigate through it"
        ) from None


def drill_down(subspace: Subspace, gb: GroupByAttribute,
               value) -> tuple[Subspace, GroupByAttribute | None]:
    """Slice on ``gb = value`` and descend one hierarchy level.

    Returns the finer subspace plus the next-finer group-by attribute to
    partition it with (None when ``gb`` is already the finest level or not
    part of a hierarchy).
    """
    schema = subspace.schema
    sliced = slice_(subspace, gb, value)
    position = schema.hierarchy_position(gb.ref)
    if position is None:
        return sliced, None
    _dim, hierarchy, idx = position
    if idx == 0:
        return sliced, None
    finer_ref = hierarchy.levels[idx - 1]
    return sliced, _level_groupby(schema, gb, finer_ref)


def roll_up(subspace: Subspace,
            gb: GroupByAttribute) -> GroupByAttribute | None:
    """The next-coarser group-by attribute for re-partitioning
    ``subspace`` (None at the top of the hierarchy)."""
    schema = subspace.schema
    position = schema.hierarchy_position(gb.ref)
    if position is None:
        return None
    _dim, hierarchy, idx = position
    if idx + 1 >= len(hierarchy.levels):
        return None
    coarser_ref = hierarchy.levels[idx + 1]
    return _level_groupby(schema, gb, coarser_ref)


@dataclass(frozen=True)
class PivotTable:
    """A two-attribute cross-tab of an aggregated measure."""

    row_values: tuple
    column_values: tuple
    cells: dict  # (row value, column value) -> aggregate

    def cell(self, row, column) -> float:
        """One aggregate (0.0 for empty combinations)."""
        return self.cells.get((row, column), 0.0)

    def row_totals(self) -> dict:
        """Aggregate per row value."""
        return {
            r: sum(self.cell(r, c) for c in self.column_values)
            for r in self.row_values
        }

    def column_totals(self) -> dict:
        """Aggregate per column value."""
        return {
            c: sum(self.cell(r, c) for r in self.row_values)
            for c in self.column_values
        }


def pivot(subspace: Subspace, rows_gb: GroupByAttribute,
          cols_gb: GroupByAttribute, measure_name: str) -> PivotTable:
    """Cross-tabulate the measure over two attributes.

    Engine-bound subspaces compute the cells through a two-key
    :class:`~repro.plan.nodes.Partition` plan (cached, backend-agnostic);
    unbound ones accumulate locally.  Rows with a NULL on either axis are
    dropped in both paths.
    """
    schema = subspace.schema
    if subspace.engine is not None:
        cells = subspace.engine.pivot_aggregates(
            subspace, rows_gb, cols_gb, measure_name)
    else:
        groups = vector.group_rows_packed(
            [schema.groupby_vector(rows_gb), schema.groupby_vector(cols_gb)],
            list(subspace.fact_rows))
        measure_vector = schema.measure_vector(measure_name)
        cells = {
            key: sum((measure_vector[r] or 0.0) for r in rows)
            for key, rows in groups.items()
        }
    row_values = tuple(sorted({r for r, _c in cells}, key=str))
    col_values = tuple(sorted({c for _r, c in cells}, key=str))
    return PivotTable(row_values, col_values, cells)
