"""The schema graph and join-path enumeration.

Nodes are tables; every foreign key contributes one edge.  Edges keep their
identity (the FK name), because OLAP schemas contain *parallel* edges — the
paper's EBiz example joins ``ACCOUNT`` to ``TRANS`` on both ``BuyerKey``
and ``SellerKey``, and those are semantically different join paths
("purchases made by ..." vs "sales made by ...").

A :class:`JoinPath` is an oriented sequence of :class:`PathStep`; each step
records the FK and the direction of travel.  Star-net generation enumerates
all simple paths from a hit table to the fact table (Algorithm 1, line 6);
subspace evaluation walks the same steps as semi-joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..relational.catalog import Database, ForeignKey


@dataclass(frozen=True)
class PathStep:
    """One traversal step along a foreign key.

    ``towards_parent`` is True when the step moves from the FK's child table
    to its parent table (e.g. fact → dimension), False for the reverse.
    """

    fk: ForeignKey
    towards_parent: bool

    @property
    def source(self) -> str:
        """Table this step starts from."""
        return self.fk.child_table if self.towards_parent else self.fk.parent_table

    @property
    def target(self) -> str:
        """Table this step arrives at."""
        return self.fk.parent_table if self.towards_parent else self.fk.child_table

    @property
    def source_column(self) -> str:
        """Join column on the source side."""
        return self.fk.child_column if self.towards_parent else self.fk.parent_column

    @property
    def target_column(self) -> str:
        """Join column on the target side."""
        return self.fk.parent_column if self.towards_parent else self.fk.child_column

    def reversed(self) -> "PathStep":
        """The same edge walked in the opposite direction."""
        return PathStep(self.fk, not self.towards_parent)

    def __str__(self) -> str:
        arrow = "->" if self.towards_parent else "<-"
        return f"{self.source} {arrow}[{self.fk.name}] {self.target}"


@dataclass(frozen=True)
class JoinPath:
    """An oriented simple path through the schema graph."""

    steps: tuple[PathStep, ...]

    @property
    def source(self) -> str:
        """First table of the path."""
        return self.steps[0].source

    @property
    def target(self) -> str:
        """Last table of the path."""
        return self.steps[-1].target

    @property
    def tables(self) -> tuple[str, ...]:
        """All tables visited, in order (length = len(steps) + 1)."""
        return (self.steps[0].source,) + tuple(s.target for s in self.steps)

    @property
    def fk_names(self) -> tuple[str, ...]:
        """The FK names traversed, in order."""
        return tuple(s.fk.name for s in self.steps)

    def reversed(self) -> "JoinPath":
        """The same path walked target → source."""
        return JoinPath(tuple(s.reversed() for s in reversed(self.steps)))

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        if not self.steps:
            return "(empty path)"
        parts = [self.steps[0].source]
        for step in self.steps:
            arrow = "->" if step.towards_parent else "<-"
            parts.append(f" {arrow}[{step.fk.name}] {step.target}")
        return "".join(parts)


EMPTY_PATH = JoinPath(())
"""The zero-step path (hit table == fact table)."""


def path_from_fk_names(database: Database, start_table: str,
                       fk_names: Sequence[str]) -> JoinPath:
    """Build an explicit child→parent path by naming the FKs to follow.

    Schema builders use this to pin down canonical group-by paths without
    relying on search: each named FK must have its child table equal to the
    current position, and the walk moves to the FK's parent.
    """
    by_name = {fk.name: fk for fk in database.foreign_keys}
    steps: list[PathStep] = []
    position = start_table
    for name in fk_names:
        if name not in by_name:
            raise KeyError(f"unknown foreign key {name!r}")
        fk = by_name[name]
        if fk.child_table != position:
            raise ValueError(
                f"FK {name!r} starts at {fk.child_table!r}, "
                f"but the walk is at {position!r}"
            )
        steps.append(PathStep(fk, towards_parent=True))
        position = fk.parent_table
    return JoinPath(tuple(steps))


class SchemaGraph:
    """Adjacency view of a database's FK structure with path enumeration."""

    def __init__(self, database: Database):
        self.database = database
        self._adjacency: dict[str, list[PathStep]] = {
            name: [] for name in database.table_names
        }
        for fk in database.foreign_keys:
            self._adjacency[fk.child_table].append(PathStep(fk, True))
            self._adjacency[fk.parent_table].append(PathStep(fk, False))

    def neighbors(self, table: str) -> list[PathStep]:
        """All steps leaving ``table`` (both FK directions)."""
        return list(self._adjacency.get(table, ()))

    def join_paths(
        self,
        source: str,
        target: str,
        max_length: int = 6,
    ) -> list[JoinPath]:
        """Every simple path (no repeated table) from ``source`` to
        ``target`` with at most ``max_length`` edges.

        Parallel FK edges yield distinct paths.  Results are sorted by
        length then by FK names, for determinism.
        """
        if source == target:
            return [EMPTY_PATH]
        results: list[JoinPath] = []

        def extend(current: str, visited: set[str], steps: list[PathStep]) -> None:
            if len(steps) >= max_length:
                return
            for step in self._adjacency.get(current, ()):
                nxt = step.target
                if nxt in visited:
                    continue
                steps.append(step)
                if nxt == target:
                    results.append(JoinPath(tuple(steps)))
                else:
                    visited.add(nxt)
                    extend(nxt, visited, steps)
                    visited.remove(nxt)
                steps.pop()

        extend(source, {source}, [])
        results.sort(key=lambda p: (len(p.steps), p.fk_names))
        return results

    def shortest_path(self, source: str, target: str,
                      max_length: int = 6) -> JoinPath | None:
        """The unique shortest simple path, or None.

        Raises :class:`ValueError` when several distinct shortest paths
        exist — callers that need a canonical path (group-by attribute
        resolution) must then specify one explicitly.
        """
        paths = self.join_paths(source, target, max_length)
        if not paths:
            return None
        best_len = len(paths[0].steps)
        best = [p for p in paths if len(p.steps) == best_len]
        if len(best) > 1:
            raise ValueError(
                f"ambiguous shortest path {source} -> {target}: "
                + "; ".join(str(p) for p in best)
            )
        return best[0]
